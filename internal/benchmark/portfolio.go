package benchmark

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"verifas/internal/benchmark/envinfo"
	"verifas/internal/core"
)

// PortfolioTally aggregates one engine's outcomes over a set of
// portfolio runs: how often it launched, won the race, finished with
// each verdict, or was canceled as a loser.
type PortfolioTally struct {
	Engine   string `json:"engine"`
	Starts   int    `json:"starts"`
	Wins     int    `json:"wins"`
	Holds    int    `json:"holds"`
	Violated int    `json:"violated"`
	TimedOut int    `json:"timed_out"`
	Budget   int    `json:"budget_exhausted"`
	Canceled int    `json:"canceled"`
	Errors   int    `json:"errors"`
}

// TallyPortfolio folds the per-run PortfolioStats of a run set into
// per-engine totals, sorted by wins (descending), then name. Runs
// without portfolio stats (single-engine or hard-errored) are skipped.
func TallyPortfolio(runs []Run) []PortfolioTally {
	byName := map[string]*PortfolioTally{}
	for _, r := range runs {
		if r.Portfolio == nil {
			continue
		}
		for _, o := range r.Portfolio.Engines {
			t, ok := byName[o.Engine]
			if !ok {
				t = &PortfolioTally{Engine: o.Engine}
				byName[o.Engine] = t
			}
			t.Starts++
			if o.Winner {
				t.Wins++
			}
			switch {
			case o.Canceled:
				t.Canceled++
			case o.Error != "":
				t.Errors++
			default:
				switch o.Verdict {
				case core.VerdictHolds:
					t.Holds++
				case core.VerdictViolated:
					t.Violated++
				case core.VerdictTimedOut:
					t.TimedOut++
				case core.VerdictBudget:
					t.Budget++
				}
			}
		}
	}
	out := make([]PortfolioTally, 0, len(byName))
	for _, t := range byName {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wins != out[j].Wins {
			return out[i].Wins > out[j].Wins
		}
		return out[i].Engine < out[j].Engine
	})
	return out
}

// Disagreements returns the runs whose error wraps
// core.ErrEngineDisagreement: decisive contradictory verdicts from two
// contenders, i.e. a verifier bug surfaced by differential testing.
func Disagreements(runs []Run) []Run {
	var out []Run
	for _, r := range runs {
		if r.Err != nil && errors.Is(r.Err, core.ErrEngineDisagreement) {
			out = append(out, r)
		}
	}
	return out
}

// PortfolioReport renders the per-engine win-rate table of a portfolio
// run set, plus any disagreements (which callers should treat as
// failures).
func PortfolioReport(runs []Run) string {
	var sb strings.Builder
	sb.WriteString("Portfolio: Per-Engine Outcomes\n")
	sb.WriteString(fmt.Sprintf("%-22s %7s %6s %7s %9s %9s %7s %9s %7s\n",
		"Engine", "Starts", "Wins", "Holds", "Violated", "TimedOut", "Budget", "Canceled", "Errors"))
	for _, t := range TallyPortfolio(runs) {
		sb.WriteString(fmt.Sprintf("%-22s %7d %6d %7d %9d %9d %7d %9d %7d\n",
			t.Engine, t.Starts, t.Wins, t.Holds, t.Violated, t.TimedOut, t.Budget, t.Canceled, t.Errors))
	}
	if dis := Disagreements(runs); len(dis) > 0 {
		sb.WriteString(fmt.Sprintf("ENGINE DISAGREEMENTS: %d\n", len(dis)))
		for _, r := range dis {
			sb.WriteString(fmt.Sprintf("  %s/%s: %v\n", r.Spec.Name, r.Template, r.Err))
		}
	}
	return sb.String()
}

// PortfolioBench is the BENCH_portfolio.json shape: the per-engine win
// tallies of a small-tier portfolio sweep plus summary counts, so CI and
// the bench-quick target can track win rates over time.
type PortfolioBench struct {
	// Env is the shared benchmark-environment header (envinfo).
	Env envinfo.Env `json:"env"`
	// Engines is the contender list raced (tie-break order).
	Engines []string `json:"engines"`
	// Runs is the number of (spec, property) portfolio races.
	Runs int `json:"runs"`
	// Decisive counts races settled by a decisive verdict.
	Decisive int `json:"decisive"`
	// Disagreements counts decisive-verdict contradictions (must be 0).
	Disagreements int `json:"disagreements"`
	// Errored counts hard-errored runs (disagreements included).
	Errored int `json:"errored"`
	// AvgTimeMS is the mean portfolio wall clock over non-errored runs.
	AvgTimeMS float64 `json:"avg_time_ms"`
	// Tallies is the per-engine outcome breakdown.
	Tallies []PortfolioTally `json:"tallies"`
}

// NewPortfolioBench summarizes a portfolio run set for BENCH_portfolio.json.
func NewPortfolioBench(engines []string, runs []Run) PortfolioBench {
	b := PortfolioBench{Env: envinfo.Collect(), Engines: engines, Runs: len(runs), Tallies: TallyPortfolio(runs)}
	var total time.Duration
	timed := 0
	for _, r := range runs {
		if r.Err != nil {
			b.Errored++
			continue
		}
		total += r.Time
		timed++
		if r.Portfolio != nil && r.Portfolio.Decisive {
			b.Decisive++
		}
	}
	b.Disagreements = len(Disagreements(runs))
	if timed > 0 {
		b.AvgTimeMS = float64(total.Milliseconds()) / float64(timed)
	}
	return b
}
