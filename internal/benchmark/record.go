package benchmark

import (
	"encoding/json"
	"io"
)

// Record is the machine-readable form of one Run, emitted by
// `benchrun -json` as one JSON object per line so successive revisions can
// track the performance trajectory of each (spec, property, verifier)
// cell.
type Record struct {
	Spec     string `json:"spec"`
	Set      string `json:"set"`
	M        int    `json:"m"`
	Template string `json:"template"`
	Class    string `json:"class"`
	Verifier string `json:"verifier"`
	// TimeUS is the elapsed wall-clock time in microseconds.
	TimeUS int64 `json:"time_us"`
	// Timeout marks wall-clock or state-budget exhaustion.
	Timeout bool `json:"timeout"`
	// Err carries a hard verifier error (absent for clean runs).
	Err string `json:"err,omitempty"`
	// Verdict is the three-valued outcome ("holds", "violated",
	// "timed-out"; "unknown" for errored runs).
	Verdict string `json:"verdict"`
	// Holds is kept alongside Verdict so older record consumers keep
	// working.
	Holds bool `json:"holds"`
	// Search-effort counters from core.Stats (spin-like runs populate
	// only States).
	BuchiStates   int `json:"buchi_states,omitempty"`
	States        int `json:"states"`
	Pruned        int `json:"pruned,omitempty"`
	Skipped       int `json:"skipped,omitempty"`
	Accelerations int `json:"accelerations,omitempty"`
	RRStates      int `json:"rr_states,omitempty"`
}

// Record converts the run into its JSON-emission form.
func (r Run) Record() Record {
	rec := Record{
		Template:      r.Template,
		Class:         r.Class,
		Verifier:      r.Verifier,
		TimeUS:        r.Time.Microseconds(),
		Timeout:       r.Fail,
		Verdict:       r.Verdict.String(),
		Holds:         r.Holds(),
		BuchiStates:   r.Stats.BuchiStates,
		States:        r.Stats.StatesExplored(),
		Pruned:        r.Stats.Pruned(),
		Skipped:       r.Stats.Skipped(),
		Accelerations: r.Stats.Accelerations(),
		RRStates:      r.Stats.RRStates(),
	}
	if r.Spec != nil {
		rec.Spec = r.Spec.Name
		rec.Set = r.Spec.Set
		rec.M = r.Spec.M
	}
	if r.Err != nil {
		rec.Err = r.Err.Error()
	}
	return rec
}

// WriteRecord emits the run as one JSON line.
func WriteRecord(w io.Writer, r Run) error {
	return json.NewEncoder(w).Encode(r.Record())
}
