package fol

import (
	"fmt"
	"strconv"
)

// This file implements the normal forms used by the verifier:
//
//   - negation normal form (NNF), pushing negations to the atoms;
//   - prenex form for the positive existential quantifiers, producing a
//     quantifier-free matrix plus a witness list;
//   - disjunctive normal form over literals, the conj(φ) operator of the
//     paper's Appendix A, which drives symbolic condition evaluation.

// Literal is an atomic constraint in negation normal form: an (in)equality
// between two terms or a (negated) relation atom.
type Literal struct {
	// Neg marks a negated literal (disequality or negated relation atom).
	Neg bool
	// IsRel distinguishes relation atoms from equalities.
	IsRel bool
	// L, R are the terms of an (in)equality when !IsRel.
	L, R Term
	// Rel, Args describe a relation atom when IsRel.
	Rel  string
	Args []Term
}

// String renders the literal in concrete syntax.
func (l Literal) String() string {
	if l.IsRel {
		s := String(Rel{Name: l.Rel, Args: l.Args})
		if l.Neg {
			return "!" + s
		}
		return s
	}
	op := " == "
	if l.Neg {
		op = " != "
	}
	return l.L.String() + op + l.R.String()
}

// NNF returns the negation normal form of f: negations are pushed to the
// atoms, implications are eliminated, and double negations removed.
// Exists nodes are preserved; a negated Exists is reported as an error by
// Validate-time checks in package has, and here conservatively panics since
// it cannot be represented.
func NNF(f Formula) Formula {
	return nnf(f, false)
}

func nnf(f Formula, neg bool) Formula {
	switch g := f.(type) {
	case True:
		if neg {
			return False{}
		}
		return True{}
	case False:
		if neg {
			return True{}
		}
		return False{}
	case Eq:
		if neg {
			return Not{F: g}
		}
		return g
	case Rel:
		if neg {
			return Not{F: g}
		}
		return g
	case Not:
		return nnf(g.F, !neg)
	case And:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = nnf(sub, neg)
		}
		if neg {
			return MkOr(fs...)
		}
		return MkAnd(fs...)
	case Or:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = nnf(sub, neg)
		}
		if neg {
			return MkAnd(fs...)
		}
		return MkOr(fs...)
	case Implies:
		// L -> R  ==  !L || R
		return nnf(MkOr(MkNot(g.L), g.R), neg)
	case Exists:
		if neg {
			panic("fol: negated existential quantifier has no NNF in this fragment (universal quantification is not supported)")
		}
		return Exists{Vars: g.Vars, Body: nnf(g.Body, false)}
	}
	panic(fmt.Sprintf("fol: unknown formula type %T", f))
}

// HasNegatedExists reports whether f contains an existential quantifier
// under an odd number of negations (after implication elimination), which
// would make NNF undefined for this fragment.
func HasNegatedExists(f Formula) bool {
	return negExists(f, false)
}

func negExists(f Formula, neg bool) bool {
	switch g := f.(type) {
	case Not:
		return negExists(g.F, !neg)
	case And:
		for _, sub := range g.Fs {
			if negExists(sub, neg) {
				return true
			}
		}
	case Or:
		for _, sub := range g.Fs {
			if negExists(sub, neg) {
				return true
			}
		}
	case Implies:
		return negExists(g.L, !neg) || negExists(g.R, neg)
	case Exists:
		return neg || negExists(g.Body, neg)
	}
	return false
}

// Prenex holds the prenex normal form of a positive-existential condition:
// a list of (renamed-apart) witness variables and a quantifier-free matrix.
type Prenex struct {
	Witnesses []QuantVar
	Matrix    Formula
}

// ToPrenex converts an NNF formula (no negated Exists) into prenex form,
// pulling all existential quantifiers to the front. Quantified variables are
// renamed apart using the given prefix so that distinct quantifier
// occurrences never clash; the prefix must be chosen so the generated names
// (prefix + "#" + n) cannot collide with artifact or global variable names.
func ToPrenex(f Formula, prefix string) Prenex {
	p := &prenexer{prefix: prefix}
	matrix := p.walk(NNF(f))
	return Prenex{Witnesses: p.witnesses, Matrix: matrix}
}

type prenexer struct {
	prefix    string
	n         int
	witnesses []QuantVar
}

func (p *prenexer) walk(f Formula) Formula {
	switch g := f.(type) {
	case Exists:
		ren := make(map[string]string, len(g.Vars))
		for _, v := range g.Vars {
			fresh := p.prefix + "#" + strconv.Itoa(p.n)
			p.n++
			ren[v.Name] = fresh
			p.witnesses = append(p.witnesses, QuantVar{Name: fresh, Rel: v.Rel})
		}
		return p.walk(RenameVars(g.Body, ren))
	case And:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = p.walk(sub)
		}
		return MkAnd(fs...)
	case Or:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = p.walk(sub)
		}
		return MkOr(fs...)
	case Not, Eq, Rel, True, False:
		return f
	}
	panic(fmt.Sprintf("fol: unexpected node %T in prenex walk (input must be NNF)", f))
}

// DNF computes the conj(φ) operator of the paper: the set of conjuncts of
// the disjunctive normal form of a quantifier-free NNF matrix, each conjunct
// being a list of literals. A formula equivalent to false yields an empty
// list; a formula equivalent to true yields one empty conjunct.
//
// The expansion is capped at maxConjuncts to guard against pathological
// blowup; when exceeded, DNF returns ok=false and the caller should fall
// back to incremental evaluation (in practice the paper's workloads stay
// tiny — conditions have a handful of atoms).
func DNF(matrix Formula, maxConjuncts int) (conjuncts [][]Literal, ok bool) {
	cs, ok := dnf(matrix, maxConjuncts)
	if !ok {
		return nil, false
	}
	return cs, true
}

func dnf(f Formula, limit int) ([][]Literal, bool) {
	switch g := f.(type) {
	case True:
		return [][]Literal{{}}, true
	case False:
		return nil, true
	case Eq:
		return [][]Literal{{{L: g.L, R: g.R}}}, true
	case Rel:
		return [][]Literal{{{IsRel: true, Rel: g.Name, Args: g.Args}}}, true
	case Not:
		switch a := g.F.(type) {
		case Eq:
			return [][]Literal{{{Neg: true, L: a.L, R: a.R}}}, true
		case Rel:
			return [][]Literal{{{Neg: true, IsRel: true, Rel: a.Name, Args: a.Args}}}, true
		default:
			panic(fmt.Sprintf("fol: non-atomic negation %T in DNF input (must be NNF)", g.F))
		}
	case Or:
		var out [][]Literal
		for _, sub := range g.Fs {
			cs, ok := dnf(sub, limit)
			if !ok {
				return nil, false
			}
			out = append(out, cs...)
			if len(out) > limit {
				return nil, false
			}
		}
		return out, true
	case And:
		out := [][]Literal{{}}
		for _, sub := range g.Fs {
			cs, ok := dnf(sub, limit)
			if !ok {
				return nil, false
			}
			var next [][]Literal
			for _, base := range out {
				for _, c := range cs {
					merged := make([]Literal, 0, len(base)+len(c))
					merged = append(merged, base...)
					merged = append(merged, c...)
					next = append(next, merged)
					if len(next) > limit {
						return nil, false
					}
				}
			}
			out = next
		}
		return out, true
	}
	panic(fmt.Sprintf("fol: unexpected node %T in DNF input (must be quantifier-free NNF)", f))
}

// DefaultDNFLimit is the conjunct cap used by callers that have no special
// requirements. Conditions in realistic HAS* specifications have at most a
// handful of atoms, so this limit is effectively never reached.
const DefaultDNFLimit = 4096
