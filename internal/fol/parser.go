package fol

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a condition in the concrete syntax:
//
//	formula  := implies
//	implies  := or [ "->" implies ]
//	or       := and { ("||" | "or") and }
//	and      := unary { ("&&" | "and") unary }
//	unary    := ("!" | "not") unary | primary
//	primary  := "(" formula ")"
//	          | "true" | "false"
//	          | "exists" qvar {"," qvar} "(" formula ")"
//	          | IDENT "(" term {"," term} ")"        relation atom
//	          | term ("==" | "=" | "!=") term        (in)equality
//	qvar     := IDENT ":" (IDENT | "val")
//	term     := IDENT | STRING | "null"
//
// Operator precedence is, from loosest to tightest: ->, ||, &&, !.
func Parse(input string) (Formula, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return f, nil
}

// MustParse parses a condition and panics on error. It is intended for
// building the hand-written workflow suite and for tests.
func MustParse(input string) Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokPunct // one of ( ) , : == = != ! && || ->
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == ':':
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokPunct, "!=", i})
				i += 2
			} else {
				toks = append(toks, token{tokPunct, "!", i})
				i++
			}
		case c == '=':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokPunct, "==", i})
				i += 2
			} else {
				toks = append(toks, token{tokPunct, "=", i})
				i++
			}
		case c == '&':
			if i+1 < n && input[i+1] == '&' {
				toks = append(toks, token{tokPunct, "&&", i})
				i += 2
			} else {
				return nil, fmt.Errorf("fol: lex error at %d: single '&'", i)
			}
		case c == '|':
			if i+1 < n && input[i+1] == '|' {
				toks = append(toks, token{tokPunct, "||", i})
				i += 2
			} else {
				return nil, fmt.Errorf("fol: lex error at %d: single '|'", i)
			}
		case c == '-':
			if i+1 < n && input[i+1] == '>' {
				toks = append(toks, token{tokPunct, "->", i})
				i += 2
			} else {
				return nil, fmt.Errorf("fol: lex error at %d: single '-'", i)
			}
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < n && input[j] != '"' {
				if input[j] == '\\' && j+1 < n {
					j++
				}
				sb.WriteByte(input[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("fol: lex error at %d: unterminated string", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case isIdentStart(rune(c)):
			j := i + 1
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("fol: lex error at %d: unexpected character %q", i, string(c))
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("fol: parse error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) accept(text string) bool {
	t := p.peek()
	if (t.kind == tokPunct || t.kind == tokIdent) && t.text == text {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errorf("expected %q, found %q", text, p.peek().text)
	}
	return nil
}

func (p *parser) parseFormula() (Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.accept("->") {
		r, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		return Implies{L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseOr() (Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	fs := []Formula{l}
	for p.accept("||") || p.accept("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		fs = append(fs, r)
	}
	if len(fs) == 1 {
		return l, nil
	}
	return MkOr(fs...), nil
}

func (p *parser) parseAnd() (Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	fs := []Formula{l}
	for p.accept("&&") || p.accept("and") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		fs = append(fs, r)
	}
	if len(fs) == 1 {
		return l, nil
	}
	return MkAnd(fs...), nil
}

func (p *parser) parseUnary() (Formula, error) {
	if p.accept("!") || p.accept("not") {
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return MkNot(f), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Formula, error) {
	t := p.peek()
	switch {
	case t.text == "(" && t.kind == tokPunct:
		p.next()
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	case t.kind == tokIdent && t.text == "true":
		p.next()
		return True{}, nil
	case t.kind == tokIdent && t.text == "false":
		p.next()
		return False{}, nil
	case t.kind == tokIdent && t.text == "exists":
		p.next()
		return p.parseExists()
	}
	// Either a relation atom IDENT(...) or an (in)equality.
	if t.kind == tokIdent && t.text != "null" && p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == "(" {
		name := p.next().text
		p.next() // '('
		var args []Term
		for {
			a, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return Rel{Name: name, Args: args}, nil
	}
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept("==") || p.accept("="):
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return Eq{L: l, R: r}, nil
	case p.accept("!="):
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return MkNot(Eq{L: l, R: r}), nil
	}
	return nil, p.errorf("expected comparison operator after term %s", l)
}

func (p *parser) parseExists() (Formula, error) {
	var vars []QuantVar
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, p.errorf("expected quantified variable name, found %q", t.text)
		}
		name := p.next().text
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		ty := p.peek()
		if ty.kind != tokIdent {
			return nil, p.errorf("expected sort after ':', found %q", ty.text)
		}
		p.next()
		rel := ty.text
		if rel == "val" {
			rel = ""
		}
		vars = append(vars, QuantVar{Name: name, Rel: rel})
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	body, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return Exists{Vars: vars, Body: body}, nil
}

func (p *parser) parseTerm() (Term, error) {
	t := p.peek()
	switch {
	case t.kind == tokString:
		p.next()
		return Const(t.text), nil
	case t.kind == tokIdent && t.text == "null":
		p.next()
		return Null(), nil
	case t.kind == tokIdent:
		p.next()
		return Var(t.text), nil
	}
	return Term{}, p.errorf("expected term, found %q", t.text)
}
