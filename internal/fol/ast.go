// Package fol implements the quantifier-free first-order condition language
// of HAS* (Li, Deutsch, Vianu: "VERIFAS: A Practical Verifier for Artifact
// Systems", VLDB 2017, Section 2).
//
// A condition is a boolean combination of atoms over a database schema and
// equality. Atoms are equalities between terms (variables, constants, the
// special constant null) and relation atoms R(x, y1..ym, z1..zn). Existential
// quantification is supported as a shorthand (the paper simulates it by
// adding variables; we evaluate witnesses natively and project them away in
// the symbolic representation).
//
// The package is self-contained: it knows nothing about tasks or services.
// Schema-dependent validation lives in package has; symbolic evaluation in
// package symbolic; concrete evaluation hooks are provided here through
// small interfaces.
package fol

import (
	"fmt"
	"sort"
	"strings"
)

// TermKind discriminates the kinds of terms appearing in conditions.
type TermKind int

const (
	// TVar is a variable reference (artifact variable, global property
	// variable, or existentially quantified witness).
	TVar TermKind = iota
	// TConst is a data constant from DOMval, written "..." in the
	// concrete syntax.
	TConst
	// TNull is the special constant null.
	TNull
)

// Term is a variable, constant, or null occurrence in a condition.
type Term struct {
	Kind TermKind
	// Name is the variable name for TVar and the literal value for
	// TConst. It is empty for TNull.
	Name string
}

// Var returns a variable term.
func Var(name string) Term { return Term{Kind: TVar, Name: name} }

// Const returns a data-constant term.
func Const(v string) Term { return Term{Kind: TConst, Name: v} }

// Null returns the null constant term.
func Null() Term { return Term{Kind: TNull} }

// IsNull reports whether the term is the null constant.
func (t Term) IsNull() bool { return t.Kind == TNull }

// String renders the term in the concrete syntax.
func (t Term) String() string {
	switch t.Kind {
	case TVar:
		return t.Name
	case TConst:
		return fmt.Sprintf("%q", t.Name)
	default:
		return "null"
	}
}

// Formula is the interface implemented by all condition AST nodes.
//
// The concrete node types are True, False, Eq, Rel, Not, And, Or, Implies,
// and Exists. Formulas are immutable once built; all transformations
// (NNF, DNF, substitution) return new trees.
type Formula interface {
	fString(sb *strings.Builder)
	// isFormula is a marker to keep the set of implementations closed.
	isFormula()
}

// True is the trivially true condition.
type True struct{}

// False is the trivially false condition.
type False struct{}

// Eq is an equality atom L = R between two terms.
type Eq struct {
	L, R Term
}

// Rel is a relation atom R(args...). By the HAS* convention the first
// argument is the key (ID) position and the remaining arguments follow the
// schema's declared attribute order (non-key attributes, then foreign keys).
type Rel struct {
	Name string
	Args []Term
}

// Not is logical negation.
type Not struct {
	F Formula
}

// And is an n-ary conjunction. An empty conjunction is true.
type And struct {
	Fs []Formula
}

// Or is an n-ary disjunction. An empty disjunction is false.
type Or struct {
	Fs []Formula
}

// Implies is logical implication L -> R.
type Implies struct {
	L, R Formula
}

// QuantVar is a typed existentially quantified variable. Rel is the
// relation name whose ID domain the variable ranges over; the empty string
// denotes a data (DOMval) variable.
type QuantVar struct {
	Name string
	Rel  string
}

// Exists is existential quantification over one or more typed variables.
// Conditions must use Exists positively (never under an odd number of
// negations); package has enforces this during validation.
type Exists struct {
	Vars []QuantVar
	Body Formula
}

func (True) isFormula()    {}
func (False) isFormula()   {}
func (Eq) isFormula()      {}
func (Rel) isFormula()     {}
func (Not) isFormula()     {}
func (And) isFormula()     {}
func (Or) isFormula()      {}
func (Implies) isFormula() {}
func (Exists) isFormula()  {}

// Convenience constructors.

// MkAnd builds a conjunction, flattening nested Ands and dropping Trues.
func MkAnd(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch g := f.(type) {
		case True:
		case And:
			out = append(out, g.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return True{}
	case 1:
		return out[0]
	}
	return And{Fs: out}
}

// MkOr builds a disjunction, flattening nested Ors and dropping Falses.
func MkOr(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch g := f.(type) {
		case False:
		case Or:
			out = append(out, g.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return False{}
	case 1:
		return out[0]
	}
	return Or{Fs: out}
}

// MkNot builds a negation, removing double negations.
func MkNot(f Formula) Formula {
	if n, ok := f.(Not); ok {
		return n.F
	}
	switch f.(type) {
	case True:
		return False{}
	case False:
		return True{}
	}
	return Not{F: f}
}

// EqVV is shorthand for an equality between two variables.
func EqVV(a, b string) Formula { return Eq{L: Var(a), R: Var(b)} }

// EqVC is shorthand for an equality between a variable and a constant.
func EqVC(a, c string) Formula { return Eq{L: Var(a), R: Const(c)} }

// EqVNull is shorthand for an equality between a variable and null.
func EqVNull(a string) Formula { return Eq{L: Var(a), R: Null()} }

// NeqVV is shorthand for a disequality between two variables.
func NeqVV(a, b string) Formula { return MkNot(EqVV(a, b)) }

// NeqVC is shorthand for a disequality between a variable and a constant.
func NeqVC(a, c string) Formula { return MkNot(EqVC(a, c)) }

// NeqVNull is shorthand for a disequality between a variable and null.
func NeqVNull(a string) Formula { return MkNot(EqVNull(a)) }

// String rendering.

func (True) fString(sb *strings.Builder)  { sb.WriteString("true") }
func (False) fString(sb *strings.Builder) { sb.WriteString("false") }

func (e Eq) fString(sb *strings.Builder) {
	sb.WriteString(e.L.String())
	sb.WriteString(" == ")
	sb.WriteString(e.R.String())
}

func (r Rel) fString(sb *strings.Builder) {
	sb.WriteString(r.Name)
	sb.WriteByte('(')
	for i, a := range r.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteByte(')')
}

func (n Not) fString(sb *strings.Builder) {
	if e, ok := n.F.(Eq); ok {
		sb.WriteString(e.L.String())
		sb.WriteString(" != ")
		sb.WriteString(e.R.String())
		return
	}
	sb.WriteString("!(")
	n.F.fString(sb)
	sb.WriteByte(')')
}

func (a And) fString(sb *strings.Builder) {
	if len(a.Fs) == 0 {
		sb.WriteString("true")
		return
	}
	sb.WriteByte('(')
	for i, f := range a.Fs {
		if i > 0 {
			sb.WriteString(" && ")
		}
		f.fString(sb)
	}
	sb.WriteByte(')')
}

func (o Or) fString(sb *strings.Builder) {
	if len(o.Fs) == 0 {
		sb.WriteString("false")
		return
	}
	sb.WriteByte('(')
	for i, f := range o.Fs {
		if i > 0 {
			sb.WriteString(" || ")
		}
		f.fString(sb)
	}
	sb.WriteByte(')')
}

func (im Implies) fString(sb *strings.Builder) {
	sb.WriteByte('(')
	im.L.fString(sb)
	sb.WriteString(" -> ")
	im.R.fString(sb)
	sb.WriteByte(')')
}

func (ex Exists) fString(sb *strings.Builder) {
	sb.WriteString("exists ")
	for i, v := range ex.Vars {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.Name)
		if v.Rel != "" {
			sb.WriteString(" : ")
			sb.WriteString(v.Rel)
		} else {
			sb.WriteString(" : val")
		}
	}
	sb.WriteString(" (")
	ex.Body.fString(sb)
	sb.WriteByte(')')
}

// String renders any formula in the concrete syntax accepted by Parse.
func String(f Formula) string {
	var sb strings.Builder
	f.fString(&sb)
	return sb.String()
}

// FreeVars returns the sorted set of free variable names in f.
func FreeVars(f Formula) []string {
	set := map[string]bool{}
	collectFree(f, map[string]bool{}, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectFree(f Formula, bound map[string]bool, out map[string]bool) {
	switch g := f.(type) {
	case True, False:
	case Eq:
		collectTerm(g.L, bound, out)
		collectTerm(g.R, bound, out)
	case Rel:
		for _, a := range g.Args {
			collectTerm(a, bound, out)
		}
	case Not:
		collectFree(g.F, bound, out)
	case And:
		for _, sub := range g.Fs {
			collectFree(sub, bound, out)
		}
	case Or:
		for _, sub := range g.Fs {
			collectFree(sub, bound, out)
		}
	case Implies:
		collectFree(g.L, bound, out)
		collectFree(g.R, bound, out)
	case Exists:
		inner := make(map[string]bool, len(bound)+len(g.Vars))
		for k := range bound {
			inner[k] = true
		}
		for _, v := range g.Vars {
			inner[v.Name] = true
		}
		collectFree(g.Body, inner, out)
	}
}

func collectTerm(t Term, bound, out map[string]bool) {
	if t.Kind == TVar && !bound[t.Name] {
		out[t.Name] = true
	}
}

// Constants returns the sorted set of data constants occurring in f.
func Constants(f Formula) []string {
	set := map[string]bool{}
	collectConsts(f, set)
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func collectConsts(f Formula, out map[string]bool) {
	switch g := f.(type) {
	case Eq:
		if g.L.Kind == TConst {
			out[g.L.Name] = true
		}
		if g.R.Kind == TConst {
			out[g.R.Name] = true
		}
	case Rel:
		for _, a := range g.Args {
			if a.Kind == TConst {
				out[a.Name] = true
			}
		}
	case Not:
		collectConsts(g.F, out)
	case And:
		for _, sub := range g.Fs {
			collectConsts(sub, out)
		}
	case Or:
		for _, sub := range g.Fs {
			collectConsts(sub, out)
		}
	case Implies:
		collectConsts(g.L, out)
		collectConsts(g.R, out)
	case Exists:
		collectConsts(g.Body, out)
	}
}

// RenameVars returns f with every free occurrence of a variable renamed
// according to ren. Variables not in ren are left unchanged. Bound variables
// are never renamed (and capture is the caller's responsibility to avoid;
// the has-level validator guarantees quantified names are globally fresh).
func RenameVars(f Formula, ren map[string]string) Formula {
	rt := func(t Term) Term {
		if t.Kind == TVar {
			if nn, ok := ren[t.Name]; ok {
				return Var(nn)
			}
		}
		return t
	}
	switch g := f.(type) {
	case True, False:
		return f
	case Eq:
		return Eq{L: rt(g.L), R: rt(g.R)}
	case Rel:
		args := make([]Term, len(g.Args))
		for i, a := range g.Args {
			args[i] = rt(a)
		}
		return Rel{Name: g.Name, Args: args}
	case Not:
		return Not{F: RenameVars(g.F, ren)}
	case And:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = RenameVars(sub, ren)
		}
		return And{Fs: fs}
	case Or:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = RenameVars(sub, ren)
		}
		return Or{Fs: fs}
	case Implies:
		return Implies{L: RenameVars(g.L, ren), R: RenameVars(g.R, ren)}
	case Exists:
		inner := make(map[string]string, len(ren))
		for k, v := range ren {
			inner[k] = v
		}
		for _, v := range g.Vars {
			delete(inner, v.Name)
		}
		return Exists{Vars: g.Vars, Body: RenameVars(g.Body, inner)}
	}
	panic(fmt.Sprintf("fol: unknown formula type %T", f))
}
