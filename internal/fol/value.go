package fol

import "fmt"

// ValueKind discriminates concrete values.
type ValueKind int

const (
	// VNull is the null value.
	VNull ValueKind = iota
	// VConst is a data value from DOMval, identified by its text.
	VConst
	// VID is an identifier from DOMid. IDs are relation-scoped: the
	// domains Dom(R.ID) are pairwise disjoint, so a VID carries the
	// relation name and a number unique within it.
	VID
)

// Value is a concrete value from DOMid ∪ DOMval ∪ {null}. The zero Value is
// null. Values are comparable with ==.
type Value struct {
	Kind ValueKind
	Str  string // constant text for VConst
	Rel  string // owning relation for VID
	ID   int    // identifier number within Rel for VID
}

// NullValue returns the null value.
func NullValue() Value { return Value{} }

// ConstValue returns the data value with the given text.
func ConstValue(s string) Value { return Value{Kind: VConst, Str: s} }

// IDValue returns the n-th identifier of relation rel.
func IDValue(rel string, n int) Value { return Value{Kind: VID, Rel: rel, ID: n} }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.Kind == VNull }

// String renders the value for debugging and counterexample display.
func (v Value) String() string {
	switch v.Kind {
	case VNull:
		return "null"
	case VConst:
		return fmt.Sprintf("%q", v.Str)
	default:
		return fmt.Sprintf("%s#%d", v.Rel, v.ID)
	}
}

// Valuation supplies values for free variables during concrete evaluation.
type Valuation interface {
	// Lookup returns the value of the named variable and whether it is
	// defined.
	Lookup(name string) (Value, bool)
}

// MapValuation is a Valuation backed by a plain map.
type MapValuation map[string]Value

// Lookup implements Valuation.
func (m MapValuation) Lookup(name string) (Value, bool) {
	v, ok := m[name]
	return v, ok
}

// Database exposes the read-only database instance to concrete evaluation.
type Database interface {
	// Row returns the attribute values (in schema attribute order,
	// excluding the ID itself) of the row of rel with the given id, and
	// whether such a row exists.
	Row(rel string, id Value) ([]Value, bool)
	// IDs returns all row identifiers of rel, used to enumerate
	// existential witnesses of ID sorts.
	IDs(rel string) []Value
	// DataDomain returns the data values available as witnesses for
	// DOMval-sorted existentials (the active data domain plus the
	// constants of the specification and property).
	DataDomain() []Value
}

// EvalError reports a malformed formula discovered during concrete
// evaluation (an unbound variable or unknown relation). Well-formed,
// validated specifications never produce it.
type EvalError struct {
	Msg string
}

// Error implements the error interface.
func (e *EvalError) Error() string { return "fol: " + e.Msg }

// Eval evaluates a condition on a database and valuation with the standard
// semantics of the paper: relation atoms with any null argument are false;
// existentials range over the relation's IDs plus null (ID sorts) or the
// data domain plus null (value sorts).
func Eval(f Formula, db Database, nu Valuation) (bool, error) {
	e := evaluator{db: db, extra: map[string]Value{}}
	return e.eval(f, nu)
}

type evaluator struct {
	db    Database
	extra map[string]Value // witness bindings, shadowing nu
}

func (e *evaluator) term(t Term, nu Valuation) (Value, error) {
	switch t.Kind {
	case TNull:
		return NullValue(), nil
	case TConst:
		return ConstValue(t.Name), nil
	default:
		if v, ok := e.extra[t.Name]; ok {
			return v, nil
		}
		v, ok := nu.Lookup(t.Name)
		if !ok {
			return Value{}, &EvalError{Msg: "unbound variable " + t.Name}
		}
		return v, nil
	}
}

func (e *evaluator) eval(f Formula, nu Valuation) (bool, error) {
	switch g := f.(type) {
	case True:
		return true, nil
	case False:
		return false, nil
	case Eq:
		l, err := e.term(g.L, nu)
		if err != nil {
			return false, err
		}
		r, err := e.term(g.R, nu)
		if err != nil {
			return false, err
		}
		return l == r, nil
	case Rel:
		if len(g.Args) == 0 {
			return false, &EvalError{Msg: "relation atom " + g.Name + " with no arguments"}
		}
		id, err := e.term(g.Args[0], nu)
		if err != nil {
			return false, err
		}
		if id.IsNull() {
			return false, nil
		}
		row, ok := e.db.Row(g.Name, id)
		if !ok {
			return false, nil
		}
		if len(row) != len(g.Args)-1 {
			return false, &EvalError{Msg: fmt.Sprintf("relation %s: atom has %d attribute args, schema has %d", g.Name, len(g.Args)-1, len(row))}
		}
		for i, a := range g.Args[1:] {
			v, err := e.term(a, nu)
			if err != nil {
				return false, err
			}
			if v.IsNull() || v != row[i] {
				return false, nil
			}
		}
		return true, nil
	case Not:
		b, err := e.eval(g.F, nu)
		return !b, err
	case And:
		for _, sub := range g.Fs {
			b, err := e.eval(sub, nu)
			if err != nil || !b {
				return false, err
			}
		}
		return true, nil
	case Or:
		for _, sub := range g.Fs {
			b, err := e.eval(sub, nu)
			if err != nil {
				return false, err
			}
			if b {
				return true, nil
			}
		}
		return false, nil
	case Implies:
		l, err := e.eval(g.L, nu)
		if err != nil {
			return false, err
		}
		if !l {
			return true, nil
		}
		return e.eval(g.R, nu)
	case Exists:
		return e.evalExists(g.Vars, g.Body, nu)
	}
	return false, &EvalError{Msg: fmt.Sprintf("unknown formula node %T", f)}
}

func (e *evaluator) evalExists(vars []QuantVar, body Formula, nu Valuation) (bool, error) {
	if len(vars) == 0 {
		return e.eval(body, nu)
	}
	v := vars[0]
	var candidates []Value
	if v.Rel != "" {
		candidates = append(candidates, e.db.IDs(v.Rel)...)
	} else {
		candidates = append(candidates, e.db.DataDomain()...)
	}
	candidates = append(candidates, NullValue())
	prev, had := e.extra[v.Name]
	defer func() {
		if had {
			e.extra[v.Name] = prev
		} else {
			delete(e.extra, v.Name)
		}
	}()
	for _, c := range candidates {
		e.extra[v.Name] = c
		b, err := e.evalExists(vars[1:], body, nu)
		if err != nil {
			return false, err
		}
		if b {
			return true, nil
		}
	}
	return false, nil
}
