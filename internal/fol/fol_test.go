package fol

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// A tiny in-memory database used by evaluation tests. One relation
// R(ID, A) with two rows, and one relation S(ID, B, F) where F is a
// foreign key into R.
type testDB struct {
	rows map[string]map[Value][]Value
}

func newTestDB() *testDB {
	r0, r1 := IDValue("R", 0), IDValue("R", 1)
	s0 := IDValue("S", 0)
	return &testDB{rows: map[string]map[Value][]Value{
		"R": {
			r0: {ConstValue("good")},
			r1: {ConstValue("bad")},
		},
		"S": {
			s0: {ConstValue("x"), r0},
		},
	}}
}

func (d *testDB) Row(rel string, id Value) ([]Value, bool) {
	row, ok := d.rows[rel][id]
	return row, ok
}

func (d *testDB) IDs(rel string) []Value {
	var out []Value
	for id := range d.rows[rel] {
		out = append(out, id)
	}
	return out
}

func (d *testDB) DataDomain() []Value {
	return []Value{ConstValue("good"), ConstValue("bad"), ConstValue("x")}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		`true`,
		`false`,
		`x == y`,
		`x != null`,
		`x == "Init"`,
		`R(x, y)`,
		`!R(x, y)`,
		`(x == y && y != z)`,
		`(x == y || y == z)`,
		`(x == y -> z == "a")`,
		`exists n : val, r : CREDIT (CUSTOMERS(c, n, r) && CREDIT(r, "Good"))`,
		`(a == b && (c == d || e != f) && !(R(g, h)))`,
	}
	for _, src := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		s := String(f)
		g, err := Parse(s)
		if err != nil {
			t.Fatalf("reparse of %q (printed %q): %v", src, s, err)
		}
		if String(g) != s {
			t.Errorf("print/parse not idempotent: %q -> %q -> %q", src, s, String(g))
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`x ==`,
		`x = y extra`,
		`(x == y`,
		`x & y`,
		`exists (x == y)`,
		`"unterminated`,
		`R(x,)`,
		`x`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error, got nil", src)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// -> binds loosest, then ||, then &&, then !.
	f := MustParse(`a == b && c == d || e == f -> !g == h`)
	im, ok := f.(Implies)
	if !ok {
		t.Fatalf("top node is %T, want Implies", f)
	}
	if _, ok := im.L.(Or); !ok {
		t.Fatalf("lhs is %T, want Or", im.L)
	}
	if _, ok := im.R.(Not); !ok {
		t.Fatalf("rhs is %T, want Not", im.R)
	}
}

func TestEvalBasics(t *testing.T) {
	db := newTestDB()
	nu := MapValuation{
		"x": IDValue("R", 0),
		"y": IDValue("R", 1),
		"v": ConstValue("good"),
		"n": NullValue(),
	}
	cases := []struct {
		src  string
		want bool
	}{
		{`true`, true},
		{`false`, false},
		{`x == x`, true},
		{`x == y`, false},
		{`x != y`, true},
		{`n == null`, true},
		{`x == null`, false},
		{`v == "good"`, true},
		{`v == "bad"`, false},
		{`R(x, v)`, true},
		{`R(y, v)`, false},
		{`R(n, v)`, false}, // null key argument: atom is false
		{`R(x, n)`, false}, // null attribute argument: atom is false
		{`!R(n, v)`, true},
		{`x == y || v == "good"`, true},
		{`x == y && v == "good"`, false},
		{`x == y -> v == "bad"`, true},
		{`exists w : val (R(x, w) && w == "good")`, true},
		{`exists w : val (R(x, w) && w == "bad")`, false},
		{`exists r : R (R(r, "bad"))`, true},
		{`exists r : R (R(r, "ugly"))`, false},
		{`exists s : S, r : R (S(s, "x", r) && R(r, "good"))`, true},
	}
	for _, c := range cases {
		f := MustParse(c.src)
		got, err := Eval(f, db, nu)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalUnboundVariable(t *testing.T) {
	db := newTestDB()
	if _, err := Eval(MustParse(`zz == null`), db, MapValuation{}); err == nil {
		t.Fatal("expected error for unbound variable")
	}
}

func TestFreeVars(t *testing.T) {
	f := MustParse(`exists w : val (R(x, w) && w == y) && z != null`)
	got := FreeVars(f)
	want := []string{"x", "y", "z"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FreeVars = %v, want %v", got, want)
	}
}

func TestConstants(t *testing.T) {
	f := MustParse(`x == "b" && (y != "a" || R(z, "c"))`)
	got := Constants(f)
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Constants = %v, want %v", got, want)
	}
}

func TestRenameVars(t *testing.T) {
	f := MustParse(`x == y && exists x : val (x == z)`)
	g := RenameVars(f, map[string]string{"x": "x2", "z": "z2"})
	want := `(x2 == y && exists x : val (x == z2))`
	if String(g) != want {
		t.Errorf("RenameVars = %s, want %s", String(g), want)
	}
}

func TestHasNegatedExists(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`exists w : val (w == x)`, false},
		{`!exists w : val (w == x)`, true},
		{`exists w : val (w == x) -> y == z`, true}, // lhs of -> is negative
		{`y == z -> exists w : val (w == x)`, false},
		{`!!exists w : val (w == x)`, false},
	}
	for _, c := range cases {
		if got := HasNegatedExists(MustParse(c.src)); got != c.want {
			t.Errorf("HasNegatedExists(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

// randFormula builds a random quantifier-free formula over the variables
// a,b,c,d (value sorted) and constants "p","q".
func randFormula(r *rand.Rand, depth int) Formula {
	vars := []string{"a", "b", "c", "d"}
	consts := []string{"p", "q"}
	if depth == 0 || r.Intn(3) == 0 {
		l := Var(vars[r.Intn(len(vars))])
		var rt Term
		switch r.Intn(3) {
		case 0:
			rt = Var(vars[r.Intn(len(vars))])
		case 1:
			rt = Const(consts[r.Intn(len(consts))])
		default:
			rt = Null()
		}
		at := Eq{L: l, R: rt}
		if r.Intn(2) == 0 {
			return MkNot(at)
		}
		return at
	}
	switch r.Intn(4) {
	case 0:
		return MkAnd(randFormula(r, depth-1), randFormula(r, depth-1))
	case 1:
		return MkOr(randFormula(r, depth-1), randFormula(r, depth-1))
	case 2:
		return MkNot(randFormula(r, depth-1))
	default:
		return Implies{L: randFormula(r, depth-1), R: randFormula(r, depth-1)}
	}
}

func randValuation(r *rand.Rand) MapValuation {
	domain := []Value{ConstValue("p"), ConstValue("q"), ConstValue("r"), NullValue()}
	nu := MapValuation{}
	for _, v := range []string{"a", "b", "c", "d"} {
		nu[v] = domain[r.Intn(len(domain))]
	}
	return nu
}

type emptyDB struct{}

func (emptyDB) Row(string, Value) ([]Value, bool) { return nil, false }
func (emptyDB) IDs(string) []Value                { return nil }
func (emptyDB) DataDomain() []Value {
	return []Value{ConstValue("p"), ConstValue("q"), ConstValue("r")}
}

// Property: NNF preserves truth under every valuation.
func TestQuickNNFPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	check := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		f := randFormula(rr, 3)
		g := NNF(f)
		for i := 0; i < 20; i++ {
			nu := randValuation(r)
			b1, err1 := Eval(f, emptyDB{}, nu)
			b2, err2 := Eval(g, emptyDB{}, nu)
			if err1 != nil || err2 != nil || b1 != b2 {
				t.Logf("mismatch on %s vs NNF %s under %v", String(f), String(g), nu)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the DNF conjuncts are jointly equivalent to the formula.
func TestQuickDNFPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	check := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		f := randFormula(rr, 3)
		matrix := NNF(f)
		conjs, ok := DNF(matrix, DefaultDNFLimit)
		if !ok {
			return true // blowup guard tripped; nothing to check
		}
		for i := 0; i < 20; i++ {
			nu := randValuation(r)
			want, err := Eval(f, emptyDB{}, nu)
			if err != nil {
				return false
			}
			got := false
			for _, c := range conjs {
				all := true
				for _, lit := range c {
					var lf Formula = Eq{L: lit.L, R: lit.R}
					if lit.IsRel {
						lf = Rel{Name: lit.Rel, Args: lit.Args}
					}
					if lit.Neg {
						lf = MkNot(lf)
					}
					b, err := Eval(lf, emptyDB{}, nu)
					if err != nil {
						return false
					}
					if !b {
						all = false
						break
					}
				}
				if all {
					got = true
					break
				}
			}
			if got != want {
				t.Logf("DNF mismatch on %s", String(f))
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: NNF output contains negation only on atoms.
func TestQuickNNFShape(t *testing.T) {
	check := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		f := NNF(randFormula(rr, 4))
		return nnfShaped(f)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func nnfShaped(f Formula) bool {
	switch g := f.(type) {
	case True, False, Eq, Rel:
		return true
	case Not:
		switch g.F.(type) {
		case Eq, Rel:
			return true
		}
		return false
	case And:
		for _, sub := range g.Fs {
			if !nnfShaped(sub) {
				return false
			}
		}
		return true
	case Or:
		for _, sub := range g.Fs {
			if !nnfShaped(sub) {
				return false
			}
		}
		return true
	case Exists:
		return nnfShaped(g.Body)
	}
	return false
}

func TestToPrenex(t *testing.T) {
	f := MustParse(`exists w : val (w == x) && (y == z || exists u : R (R(u, w2)))`)
	p := ToPrenex(f, "ex")
	if len(p.Witnesses) != 2 {
		t.Fatalf("witnesses = %v, want 2", p.Witnesses)
	}
	if p.Witnesses[0].Rel != "" || p.Witnesses[1].Rel != "R" {
		t.Errorf("witness sorts wrong: %v", p.Witnesses)
	}
	for _, w := range p.Witnesses {
		if !strings.HasPrefix(w.Name, "ex#") {
			t.Errorf("witness name %q not renamed apart", w.Name)
		}
	}
	// Matrix is quantifier-free.
	if strings.Contains(String(p.Matrix), "exists") {
		t.Errorf("matrix still quantified: %s", String(p.Matrix))
	}
}

func TestDNFLimit(t *testing.T) {
	// (a==b || a==c) repeated n times conjunctively explodes to 2^n.
	var fs []Formula
	for i := 0; i < 20; i++ {
		fs = append(fs, MkOr(EqVV("a", "b"), EqVV("a", "c")))
	}
	if _, ok := DNF(MkAnd(fs...), 1024); ok {
		t.Error("expected DNF limit to trip")
	}
}

func TestMkHelpers(t *testing.T) {
	if _, ok := MkAnd().(True); !ok {
		t.Error("empty MkAnd should be True")
	}
	if _, ok := MkOr().(False); !ok {
		t.Error("empty MkOr should be False")
	}
	if _, ok := MkNot(True{}).(False); !ok {
		t.Error("MkNot(True) should be False")
	}
	if _, ok := MkNot(MkNot(EqVV("a", "b"))).(Eq); !ok {
		t.Error("double negation should cancel")
	}
	// Flattening.
	f := MkAnd(EqVV("a", "b"), MkAnd(EqVV("c", "d"), EqVV("e", "f")))
	if a, ok := f.(And); !ok || len(a.Fs) != 3 {
		t.Errorf("MkAnd should flatten, got %s", String(f))
	}
}

func TestConvenienceConstructors(t *testing.T) {
	cases := []struct {
		f    Formula
		want string
	}{
		{EqVC("x", "c"), `x == "c"`},
		{EqVNull("x"), `x == null`},
		{NeqVV("x", "y"), `x != y`},
		{NeqVC("x", "c"), `x != "c"`},
		{NeqVNull("x"), `x != null`},
	}
	for _, c := range cases {
		if got := String(c.f); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	if !Null().IsNull() || Var("x").IsNull() || Const("c").IsNull() {
		t.Error("IsNull misclassifies")
	}
}

func TestLiteralString(t *testing.T) {
	cases := []struct {
		l    Literal
		want string
	}{
		{Literal{L: Var("x"), R: Var("y")}, "x == y"},
		{Literal{Neg: true, L: Var("x"), R: Null()}, "x != null"},
		{Literal{IsRel: true, Rel: "R", Args: []Term{Var("x"), Const("c")}}, `R(x, "c")`},
		{Literal{Neg: true, IsRel: true, Rel: "R", Args: []Term{Var("x")}}, `!R(x)`},
	}
	for _, c := range cases {
		if got := c.l.String(); got != c.want {
			t.Errorf("Literal.String = %q, want %q", got, c.want)
		}
	}
}

func TestEvalErrorMessage(t *testing.T) {
	err := &EvalError{Msg: "boom"}
	if err.Error() != "fol: boom" {
		t.Errorf("EvalError = %q", err.Error())
	}
}
