package engines_test

import (
	"context"
	"testing"
	"time"

	"verifas/internal/core"
	"verifas/internal/engines"
	"verifas/internal/fol"
	"verifas/internal/ltl"
	"verifas/internal/workflows"
)

func TestDefaultRegistryContents(t *testing.T) {
	r := engines.Default()
	names := map[string]bool{}
	for _, n := range r.Names() {
		names[n] = true
	}
	for _, want := range []string{
		"verifas", "verifas-noset", "verifas-nosp", "verifas-nosa",
		"verifas-nodss", "verifas-norr", "verifas-aggrr",
		"spinlike", "spinlike-bitstate",
	} {
		if !names[want] {
			t.Errorf("default registry missing %q (have %v)", want, r.Names())
		}
	}
	for _, n := range engines.DefaultPortfolio {
		if !names[n] {
			t.Errorf("DefaultPortfolio names unknown engine %q", n)
		}
	}
	// Registered caveats must match what the built engines report.
	for _, n := range r.Names() {
		reg, _ := r.Lookup(n)
		eng, err := r.Build(n, core.Budget{})
		if err != nil {
			t.Fatalf("build %q: %v", n, err)
		}
		if eng.Name() != n {
			t.Errorf("engine %q reports Name() = %q", n, eng.Name())
		}
		if eng.Caps() != reg.Caps {
			t.Errorf("engine %q: built caps %+v != registered caps %+v", n, eng.Caps(), reg.Caps)
		}
	}
}

// TestPortfolioMatchesSingleEngine runs the default portfolio on a real
// workflow property and checks the merged verdict against the exact
// engine run alone — the ISSUE's end-to-end acceptance criterion.
func TestPortfolioMatchesSingleEngine(t *testing.T) {
	sys := workflows.OrderFulfillment(false)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	prop := &core.Property{
		Name:    "guard",
		Task:    "ProcessOrders",
		Conds:   map[string]fol.Formula{"stocked": fol.MustParse(`instock == "Yes"`)},
		Formula: ltl.MustParse(`G (open(ShipItem) -> stocked)`),
	}
	budget := core.Budget{MaxStates: 400_000, Timeout: 120 * time.Second}
	r := engines.Default()

	solo, err := r.Build("verifas", budget)
	if err != nil {
		t.Fatal(err)
	}
	want, err := solo.Verify(context.Background(), sys, prop)
	if err != nil {
		t.Fatal(err)
	}
	if want.TimedOut() {
		t.Skipf("solo run exhausted its budget after %d states", want.Stats.StatesExplored())
	}

	contenders, err := r.BuildAll(engines.DefaultPortfolio, budget)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.VerifyPortfolio(context.Background(), sys, prop, core.PortfolioOptions{Engines: contenders})
	if err != nil {
		t.Fatal(err)
	}
	if got.Verdict != want.Verdict {
		t.Errorf("portfolio verdict %v != solo verifas verdict %v", got.Verdict, want.Verdict)
	}
	p := got.Portfolio
	if p == nil || !p.Decisive || p.Winner == "" {
		t.Fatalf("portfolio stats missing or indecisive: %+v", p)
	}
	if len(p.Engines) != len(engines.DefaultPortfolio) {
		t.Errorf("outcome count %d != contender count %d", len(p.Engines), len(engines.DefaultPortfolio))
	}
	// OrderFulfillment declares artifact relations and the default
	// portfolio mixes spinlike (set-ignoring) with verifas, so the
	// mismatch demotion must be active and only verifas can win "holds".
	if !p.Mismatch {
		t.Error("abstraction mismatch not flagged for the default portfolio on OrderFulfillment")
	}
	if got.Verdict == core.VerdictHolds && p.Winner != "verifas" {
		t.Errorf("a 'holds' under mismatch can only be won by verifas, winner = %q", p.Winner)
	}
}
