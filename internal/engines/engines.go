// Package engines wires the built-in verification engines into a
// core.Registry. It exists above core and spinlike so that neither
// imports the other: core defines the registry and its own variants,
// spinlike registers the baseline, and every front end (the service,
// the benchmark harness, the CLIs) resolves engine labels through the
// default registry assembled here.
package engines

import (
	"verifas/internal/core"
	"verifas/internal/spinlike"
)

// DefaultPortfolio is the engine selection used when a caller asks for
// portfolio mode without naming contenders: the full VERIFAS
// configuration raced against the bounded Spin-like baseline — the
// paper's own comparison pair, with complementary performance profiles.
// Order is the deterministic tie-break priority (the exact engine
// first).
var DefaultPortfolio = []string{"verifas", "spinlike"}

// Default returns a fresh registry holding every built-in engine
// configuration: the VERIFAS core and its ablation variants
// ("verifas", "verifas-noset", "verifas-nosp", "verifas-nosa",
// "verifas-nodss", "verifas-norr", "verifas-aggrr") plus the bounded
// baseline ("spinlike", "spinlike-bitstate"). The registry is mutable;
// callers may add their own registrations on top.
func Default() *core.Registry {
	r := core.NewRegistry()
	core.RegisterVerifas(r)
	spinlike.Register(r)
	return r
}
