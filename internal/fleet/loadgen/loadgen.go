// Package loadgen is the fleet's deterministic load generator: it
// drives a mixed verification workload (submissions, result waits,
// status polls, event streams) against one endpoint — a verifas-router
// or a bare verifasd — at a target QPS, from a seeded schedule, and
// reports achieved throughput, latency percentiles and loss. The soak
// test runs it against a 3-replica fleet while killing a replica
// mid-run; `make fleet-soak` turns its report into BENCH_fleet.json.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"verifas/internal/service"
	"verifas/internal/service/client"
)

// Config parameterizes one load run. Zero values mean defaults.
type Config struct {
	// Target is the base URL submissions go to (router or replica).
	Target string
	// Seed drives the spec schedule and workload mix; identical seeds
	// replay identical schedules (default 1).
	Seed int64
	// Jobs is the total submission count (default 1000).
	Jobs int
	// Specs is the number of distinct cache keys cycled over — each is
	// an option variant of the template spec (default 50).
	Specs int
	// QPS is the target submission rate; 0 submits as fast as the
	// concurrency bound allows.
	QPS float64
	// Concurrency bounds the in-flight jobs (default 16).
	Concurrency int
	// Retry is applied to the underlying client (nil = fail fast; the
	// soak passes a policy so a mid-run replica kill loses nothing).
	Retry *client.RetryPolicy
	// Workflow and PropertySrc are the spec template; defaults verify
	// the built-in buggy order-fulfillment workflow.
	Workflow    string
	PropertySrc string
	// BaseMaxStates is the option variant base: spec i sets
	// max_states = BaseMaxStates + i (default 10000).
	BaseMaxStates int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Jobs <= 0 {
		c.Jobs = 1000
	}
	if c.Specs <= 0 {
		c.Specs = 50
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.Workflow == "" {
		c.Workflow = "OrderFulfillmentBuggy"
		c.PropertySrc = `property ship_stocked of ProcessOrders {
			define stocked := instock == "Yes"
			formula G (open(ShipItem) -> stocked)
		}`
	}
	if c.BaseMaxStates <= 0 {
		c.BaseMaxStates = 10_000
	}
	return c
}

// Op is one scheduled operation: which spec to submit and how to
// consume the result.
type Op struct {
	// Spec indexes the option variant ([0, Specs)).
	Spec int
	// Mode is how the job is consumed after submission.
	Mode Mode
}

// Mode is a workload flavor.
type Mode int

const (
	// ModeWait submits then blocks on /result?wait=1.
	ModeWait Mode = iota
	// ModeStatusThenWait polls /v1/jobs/{id} once (an id-routed read),
	// then blocks on the result.
	ModeStatusThenWait
	// ModeStream follows the event stream to its terminal record.
	ModeStream
)

// Schedule expands the config into its deterministic operation list:
// the spec sequence and per-job workload mix depend only on Seed, Jobs
// and Specs. Run executes exactly this schedule.
func Schedule(cfg Config) []Op {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ops := make([]Op, cfg.Jobs)
	for i := range ops {
		ops[i].Spec = rng.Intn(cfg.Specs)
		switch roll := rng.Intn(10); {
		case roll < 7:
			ops[i].Mode = ModeWait
		case roll < 9:
			ops[i].Mode = ModeStatusThenWait
		default:
			ops[i].Mode = ModeStream
		}
	}
	return ops
}

// Request builds the submission for spec index i under cfg: the
// template spec with a distinct max_states, so each index is a distinct
// cache key with an identical verification.
func Request(cfg Config, i int) *service.SubmitRequest {
	cfg = cfg.withDefaults()
	return &service.SubmitRequest{
		Workflow:    cfg.Workflow,
		PropertySrc: cfg.PropertySrc,
		Options:     &service.RequestOptions{MaxStates: cfg.BaseMaxStates + i},
	}
}

// Report is the machine-readable outcome of one run.
type Report struct {
	// Jobs is the scheduled submission count; Completed the ones that
	// reached a terminal verdict; Lost the ones that did not (errors
	// after retries, missing results). A healthy fleet run has
	// Lost == 0 even across a replica kill.
	Jobs      int `json:"jobs"`
	Specs     int `json:"specs"`
	Completed int `json:"completed"`
	Lost      int `json:"lost"`
	// Cached counts submissions answered from the result store.
	Cached int `json:"cached"`
	// TargetQPS is the configured pacing; QPS the achieved submission
	// rate over the run.
	TargetQPS float64 `json:"target_qps"`
	QPS       float64 `json:"qps"`
	// P50MS/P99MS are end-to-end latency percentiles (submit to
	// terminal verdict), milliseconds.
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	DurationMS int64   `json:"duration_ms"`
	// Resubmits counts ops re-issued after their job handle was lost
	// mid-op (the issuing replica died between the submission and the
	// result read). Submissions are content-addressed, so a resubmit
	// lands on the same cache key — idempotent, never a duplicate
	// engine run once the key is in the shared store.
	Resubmits int `json:"resubmits"`
	// Verdicts counts terminal verdicts seen (all should agree here).
	Verdicts map[string]int `json:"verdicts"`
	// Errors samples up to 8 failure messages for diagnosis.
	Errors []string `json:"errors,omitempty"`
}

// Run executes the configured schedule against the target, pacing
// submissions at QPS across the concurrency bound, and reports.
func Run(ctx context.Context, cfg Config) *Report {
	cfg = cfg.withDefaults()
	ops := Schedule(cfg)
	cl := client.New(cfg.Target)
	cl.Retry = cfg.Retry

	rep := &Report{
		Jobs:      cfg.Jobs,
		Specs:     cfg.Specs,
		TargetQPS: cfg.QPS,
		Verdicts:  make(map[string]int),
	}
	var mu sync.Mutex
	latencies := make([]time.Duration, 0, cfg.Jobs)
	fail := func(op Op, err error) {
		mu.Lock()
		defer mu.Unlock()
		rep.Lost++
		if len(rep.Errors) < 8 {
			rep.Errors = append(rep.Errors, fmt.Sprintf("spec %d: %v", op.Spec, err))
		}
	}

	var interval time.Duration
	if cfg.QPS > 0 {
		interval = time.Duration(float64(time.Second) / cfg.QPS)
	}
	feed := make(chan Op)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := range feed {
				runOp(ctx, cl, cfg, op, rep, &mu, &latencies, fail)
			}
		}()
	}
	start := time.Now()
	next := start
	for _, op := range ops {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
				}
			}
			next = next.Add(interval)
		}
		if ctx.Err() != nil {
			fail(op, ctx.Err())
			continue
		}
		feed <- op
	}
	close(feed)
	wg.Wait()
	elapsed := time.Since(start)
	rep.DurationMS = elapsed.Milliseconds()
	if secs := elapsed.Seconds(); secs > 0 {
		rep.QPS = float64(cfg.Jobs-rep.Lost) / secs
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50MS = percentileMS(latencies, 0.50)
	rep.P99MS = percentileMS(latencies, 0.99)
	return rep
}

// runOp drives one scheduled op to a terminal verdict. A lost job
// handle (the issuing replica died between the submission and the
// id-addressed read) is healed by resubmitting the op: content
// addressing makes the resubmit land on the same cache key, so it never
// duplicates an engine run once the result is in the shared store.
func runOp(ctx context.Context, cl *client.Client, cfg Config, op Op, rep *Report, mu *sync.Mutex, latencies *[]time.Duration, fail func(Op, error)) {
	var lastErr error
	for try := 0; try < 3; try++ {
		if try > 0 {
			mu.Lock()
			rep.Resubmits++
			mu.Unlock()
		}
		t0 := time.Now()
		cached, verdict, err := tryOp(ctx, cl, cfg, op)
		if err == nil {
			lat := time.Since(t0)
			mu.Lock()
			rep.Completed++
			if cached {
				rep.Cached++
			}
			rep.Verdicts[verdict]++
			*latencies = append(*latencies, lat)
			mu.Unlock()
			return
		}
		lastErr = err
		if !recoverable(err) || ctx.Err() != nil {
			break
		}
	}
	fail(op, lastErr)
}

// recoverable reports whether a failed op is worth resubmitting: lost
// handles (404 after a replica restart, 502 from a router that lost the
// shard), saturation, and transport failures are; validation errors are
// not.
func recoverable(err error) bool {
	var ae *client.APIError
	if errors.As(err, &ae) {
		switch ae.Status {
		case 404, 429, 502, 503:
			return true
		}
		return ae.Status >= 500
	}
	return true
}

func tryOp(ctx context.Context, cl *client.Client, cfg Config, op Op) (cached bool, verdict string, err error) {
	st, err := cl.Submit(ctx, Request(cfg, op.Spec))
	if err != nil {
		return false, "", err
	}
	cached = st.Cached
	if op.Mode == ModeStatusThenWait {
		if _, serr := cl.Status(ctx, st.ID); serr != nil {
			return cached, "", fmt.Errorf("status: %w", serr)
		}
	}
	if op.Mode == ModeStream {
		var last service.StreamEvent
		if serr := cl.Stream(ctx, st.ID, func(ev service.StreamEvent) error {
			last = ev
			return nil
		}); serr != nil {
			return cached, "", fmt.Errorf("stream: %w", serr)
		}
		if last.Type != "verdict" || last.Verdict == nil {
			return cached, "", fmt.Errorf("stream ended on %q, not a verdict", last.Type)
		}
		return cached, last.Verdict.Verdict.String(), nil
	}
	res, rerr := cl.Result(ctx, st.ID, true)
	if rerr != nil {
		return cached, "", fmt.Errorf("result: %w", rerr)
	}
	return cached, res.Verdict, nil
}

func percentileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}
