package fleet_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"verifas/internal/benchmark/envinfo"
	"verifas/internal/fleet"
	"verifas/internal/fleet/loadgen"
	"verifas/internal/service"
	"verifas/internal/service/client"
	"verifas/internal/store"
)

// TestScheduleDeterminism: the loadgen schedule is a pure function of
// (seed, jobs, specs) — identical configs replay identical workloads.
func TestScheduleDeterminism(t *testing.T) {
	a := loadgen.Schedule(loadgen.Config{Seed: 42, Jobs: 500, Specs: 50})
	b := loadgen.Schedule(loadgen.Config{Seed: 42, Jobs: 500, Specs: 50})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := loadgen.Schedule(loadgen.Config{Seed: 43, Jobs: 500, Specs: 50})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	modes := map[loadgen.Mode]int{}
	for _, op := range a {
		if op.Spec < 0 || op.Spec >= 50 {
			t.Fatalf("spec index %d out of range", op.Spec)
		}
		modes[op.Mode]++
	}
	for _, m := range []loadgen.Mode{loadgen.ModeWait, loadgen.ModeStatusThenWait, loadgen.ModeStream} {
		if modes[m] == 0 {
			t.Errorf("mode %d never scheduled — the mix is not mixed", m)
		}
	}
	// Identical requests per index: the content-addressed key depends
	// only on the spec index.
	ka, _ := service.RequestKey(loadgen.Request(loadgen.Config{}, 7), service.KeyDefaults{})
	kb, _ := service.RequestKey(loadgen.Request(loadgen.Config{}, 7), service.KeyDefaults{})
	if ka == "" || ka != kb {
		t.Fatalf("request keys for one index diverge: %q vs %q", ka, kb)
	}
}

// soakReplica is one fleet member on a real TCP listener, killable and
// restartable on the same address (crash semantics: Close drops the
// listener and every in-flight connection; nothing is drained).
type soakReplica struct {
	node string
	addr string // host:port, stable across restarts
	svc  *service.Server
	srv  *http.Server
}

// launchSoak boots a replica for the fleet soak: tiered store over the
// shared dir, lease manager with a short TTL, listener on addr
// ("127.0.0.1:0" picks a port; pass the previous addr to restart).
func launchSoak(t *testing.T, dir, node, addr string) *soakReplica {
	t.Helper()
	disk, err := store.OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	leases, err := store.OpenLeases(filepath.Join(dir, "leases"), node, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	leases.StartSweeper(time.Second)
	svc := service.NewServer(service.Config{
		Workers: 4,
		NodeID:  node,
		Store:   store.NewTiered(store.NewMemory(16), disk),
		Leases:  leases,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &soakReplica{node: node, addr: ln.Addr().String(), svc: svc, srv: srv}
}

// kill simulates a crash: the listener and all connections drop at
// once; the server object is abandoned without a drain.
func (r *soakReplica) kill() { _ = r.srv.Close() }

// soakOutcome bundles what the assertions and the bench emitter need.
type soakOutcome struct {
	report *loadgen.Report
	stats  fleet.RouterStatsResponse
	// postWarmupRuns is the fleet-wide engine-run delta after warm-up —
	// the "each key runs at most once" number, which must be zero.
	postWarmupRuns int64
	// perReplica is each live replica's routed-request count.
	perReplica map[string]int64
}

// runSoak drives the full scenario: 3 replicas + router, warm-up of
// every spec key, then jobs submissions at qps with a replica killed
// and restarted mid-run.
func runSoak(t *testing.T, jobs, specs int, qps float64) *soakOutcome {
	t.Helper()
	dir := t.TempDir()
	reps := make([]*soakReplica, 3)
	addrs := make([]string, 3)
	for i := range reps {
		reps[i] = launchSoak(t, dir, fmt.Sprintf("s%d", i), "127.0.0.1:0")
		addrs[i] = reps[i].addr
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.kill()
		}
	})
	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Replicas:       addrs,
		HealthInterval: 25 * time.Millisecond,
		Retry:          &client.RetryPolicy{MaxAttempts: 4, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond},
		Version:        "soak",
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckNow(context.Background())
	rt.Start()
	t.Cleanup(rt.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	front := &http.Server{Handler: rt.Handler()}
	go func() { _ = front.Serve(ln) }()
	t.Cleanup(func() { _ = front.Close() })
	target := "http://" + ln.Addr().String()

	// Warm-up: compute every spec key once through the router, so the
	// shared store holds all verdicts before the measured run.
	ctx, cancel := context.WithTimeout(context.Background(), 55*time.Second)
	defer cancel()
	cl := client.New(target)
	cl.Retry = &client.RetryPolicy{MaxAttempts: 4, BaseDelay: 25 * time.Millisecond}
	warm := loadgen.Config{Jobs: jobs, Specs: specs}
	for i := 0; i < specs; i++ {
		st, err := cl.Submit(ctx, loadgen.Request(warm, i))
		if err != nil {
			t.Fatalf("warm-up submit %d: %v", i, err)
		}
		res, err := cl.Result(ctx, st.ID, true)
		if err != nil {
			t.Fatalf("warm-up result %d: %v", i, err)
		}
		if res.Verdict != "violated" {
			t.Fatalf("warm-up verdict %d = %q, want violated", i, res.Verdict)
		}
	}
	baseline := map[string]int64{}
	for _, r := range reps {
		baseline[r.node] = r.svc.Metrics().Snapshot().EngineRuns
	}

	// Measured run, with a kill+restart of replica 1 once a third of
	// the load has been routed.
	proxiedAtStart := rt.Metrics().Snapshot().Proxied
	killed := make(chan struct{})
	var killedSvc *service.Server
	go func() {
		defer close(killed)
		for rt.Metrics().Snapshot().Proxied-proxiedAtStart < int64(jobs/3) {
			select {
			case <-ctx.Done():
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
		victim := reps[1]
		killedSvc = victim.svc
		victim.kill()
		time.Sleep(250 * time.Millisecond)
		reps[1] = launchSoak(t, dir, victim.node, victim.addr)
	}()
	rep := loadgen.Run(ctx, loadgen.Config{
		Target: target,
		Seed:   7,
		Jobs:   jobs,
		Specs:  specs,
		QPS:    qps,
		Retry:  &client.RetryPolicy{MaxAttempts: 5, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond},
	})
	<-killed

	// Post-warm-up engine runs, fleet-wide. Surviving replicas report a
	// delta over their warm-up baseline; the restarted instance counts
	// from zero, so its whole counter is post-warm-up. The killed
	// instance's counter froze at kill time and still lives in the
	// frozen server object captured by killedSvc, so its pre-death
	// post-warm-up runs are counted too — nothing escapes the sum.
	if killedSvc == nil {
		t.Fatal("the mid-run kill never fired (run finished or timed out first)")
	}
	var post int64
	for i, r := range reps {
		runs := r.svc.Metrics().Snapshot().EngineRuns
		if i == 1 {
			// The restarted instance counts from zero: every run it did
			// happened after warm-up.
			post += runs
		} else {
			post += runs - baseline[r.node]
		}
	}
	post += killedSvc.Metrics().Snapshot().EngineRuns - baseline[reps[1].node]

	resp, err := http.Get(target + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats fleet.RouterStatsResponse
	if derr := json.NewDecoder(resp.Body).Decode(&stats); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()

	perReplica := map[string]int64{}
	for _, rs := range stats.Replicas {
		perReplica[rs.Node] = rs.Proxied
	}
	return &soakOutcome{report: rep, stats: stats, postWarmupRuns: post, perReplica: perReplica}
}

// TestFleetSoak is the acceptance scenario: 3 replicas behind the
// router, 1000 jobs over 50 distinct keys, one replica crash-killed and
// restarted mid-run. No job is lost, every verdict agrees, no key runs
// an engine after warm-up, and routed load spreads over the fleet.
func TestFleetSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak needs the full job volume; run without -short or via make fleet-soak")
	}
	out := runSoak(t, 1000, 50, 400)
	rep := out.report

	if rep.Lost != 0 {
		t.Errorf("lost %d jobs (errors: %v)", rep.Lost, rep.Errors)
	}
	if rep.Completed != rep.Jobs {
		t.Errorf("completed %d of %d jobs", rep.Completed, rep.Jobs)
	}
	if got := rep.Verdicts["violated"]; got != rep.Completed {
		t.Errorf("verdicts disagree: %v", rep.Verdicts)
	}
	if out.postWarmupRuns != 0 {
		t.Errorf("%d engine runs after warm-up, want 0 (fleet-wide singleflight + shared store)", out.postWarmupRuns)
	}
	if rep.Cached < (rep.Completed*9)/10 {
		t.Errorf("only %d/%d submissions served from cache", rep.Cached, rep.Completed)
	}
	// Admission fairness: consistent hashing spreads the keys, so every
	// replica (including the restarted one) carries a real share.
	for node, n := range out.perReplica {
		if n < int64(rep.Jobs/20) {
			t.Errorf("replica %s served %d requests, want >= %d (unfair routing)", node, n, rep.Jobs/20)
		}
	}
	if out.stats.Fleet.ReplicasSeen != 3 {
		t.Errorf("final stats reached %d replicas, want 3", out.stats.Fleet.ReplicasSeen)
	}
	t.Logf("soak: qps=%.0f p50=%.1fms p99=%.1fms cached=%d resubmits=%d failovers=%d",
		rep.QPS, rep.P50MS, rep.P99MS, rep.Cached, rep.Resubmits, out.stats.Router.Failovers)
}

// fleetBench is the BENCH_fleet.json record: the soak's load report
// plus the router's fleet-wide counters.
type fleetBench struct {
	Replicas int             `json:"replicas"`
	Load     *loadgen.Report `json:"load"`
	// CoalesceRate is the fraction of completed jobs answered without
	// a dedicated engine run (store hits + singleflight joins).
	CoalesceRate float64 `json:"coalesce_rate"`
	// MemoryHitRate/DiskHitRate split the fleet's store hits by tier.
	MemoryHitRate  float64                     `json:"memory_hit_rate"`
	DiskHitRate    float64                     `json:"disk_hit_rate"`
	Router         fleet.RouterMetricsSnapshot `json:"router"`
	Fleet          fleet.FleetAggregate        `json:"fleet"`
	PostWarmupRuns int64                       `json:"post_warmup_engine_runs"`
	Env            envinfo.Env                 `json:"env"`
}

// TestWriteFleetBenchJSON runs the soak and writes the machine-readable
// record to $BENCH_FLEET_JSON (skipped when unset; `make fleet-soak`
// sets it).
func TestWriteFleetBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_FLEET_JSON")
	if path == "" {
		t.Skip("set BENCH_FLEET_JSON=/path/to/BENCH_fleet.json to write the fleet soak record")
	}
	out := runSoak(t, 1000, 50, 400)
	rep := out.report
	if rep.Lost != 0 || rep.Completed != rep.Jobs {
		t.Fatalf("soak not clean (lost=%d completed=%d/%d): not writing a bench record", rep.Lost, rep.Completed, rep.Jobs)
	}
	rec := fleetBench{
		Replicas:       3,
		Load:           rep,
		Router:         out.stats.Router,
		Fleet:          out.stats.Fleet,
		PostWarmupRuns: out.postWarmupRuns,
		Env:            envinfo.Collect(),
	}
	if rep.Completed > 0 {
		rec.CoalesceRate = float64(rep.Cached) / float64(rep.Completed)
	}
	if hits := out.stats.Fleet.CacheHits; hits > 0 {
		rec.MemoryHitRate = float64(out.stats.Fleet.MemoryHits) / float64(hits)
		rec.DiskHitRate = float64(out.stats.Fleet.DiskHits) / float64(hits)
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: qps=%.0f p50=%.1fms p99=%.1fms coalesce=%.2f", path, rep.QPS, rep.P50MS, rep.P99MS, rec.CoalesceRate)
}
