// Package fleet is the distribution layer over N verifasd replicas: a
// consistent-hash ring routing each job to the shard that owns its
// content-addressed cache key, a stateless HTTP router proxying the
// service API to the owning shard (failing over to ring successors when
// a replica is unhealthy), and a deterministic load generator + soak
// harness that prove fleet-wide request coalescing under heavy traffic.
//
// The ring keys on the same SHA-256 cache key internal/service derives
// for its result store, so identical specs land on one shard whose local
// singleflight coalesces them; the shared persistent store plus TTL'd
// lease files (internal/store.LeaseManager) extend the coalescing across
// replicas for failover windows and router-less clients.
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVNodes is the virtual-node count per member: high enough that
// key distribution stays within a few percent of uniform for single-digit
// fleets, low enough that ring rebuilds stay sub-millisecond.
const DefaultVNodes = 160

// Ring is a consistent-hash ring over replica addresses with virtual
// nodes. Safe for concurrent use; membership changes are O(members ·
// vnodes · log) rebuilds, lookups are a binary search.
//
// The minimal-disruption invariant: removing a member remaps only the
// keys that member owned (their successors absorb them); every other
// key keeps its owner. Adding it back restores the original mapping.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	hashes  []uint64          // sorted vnode positions
	owner   map[uint64]string // vnode position -> member
	members map[string]bool
}

// NewRing builds an empty ring with the given virtual-node count per
// member (<= 0 uses DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{
		vnodes:  vnodes,
		owner:   make(map[uint64]string),
		members: make(map[string]bool),
	}
}

// hash64 positions a label on the ring: FNV-1a (fast, stable across
// processes and releases — the position of a member must not depend on
// process state, or routers would disagree about ownership) followed by
// a SplitMix64-style avalanche finalizer. Bare FNV-1a clusters badly on
// the short, near-identical labels vnodes produce ("host:port#17"); the
// finalizer spreads them across the full 64-bit ring.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// vnodeLabel derives the ring label of one virtual node.
func vnodeLabel(member string, i int) string {
	return member + "#" + strconv.Itoa(i)
}

// Add inserts a member (idempotent).
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		h := hash64(vnodeLabel(member, i))
		if _, taken := r.owner[h]; taken {
			// Vanishingly rare 64-bit collision: first claimant keeps the
			// slot; the member still has its other vnodes.
			continue
		}
		r.owner[h] = member
		r.hashes = append(r.hashes, h)
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Remove deletes a member (idempotent). Only keys the member owned
// change hands.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	keep := r.hashes[:0]
	for _, h := range r.hashes {
		if r.owner[h] == member {
			delete(r.owner, h)
			continue
		}
		keep = append(keep, h)
	}
	r.hashes = keep
}

// Members returns the current membership in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the member owning key ("" on an empty ring): the first
// vnode clockwise from the key's position.
func (r *Ring) Owner(key string) string {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns up to n distinct members in ring order starting at
// key's owner: the failover order — when the owner is unhealthy the
// router tries its successors, which are exactly the members that absorb
// the owner's keys if it is removed.
func (r *Ring) Sequence(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		m := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
