package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
)

// testKeys derives n deterministic hex keys shaped like the service's
// SHA-256 cache keys.
func testKeys(n int) []string {
	rng := rand.New(rand.NewSource(42))
	keys := make([]string, n)
	for i := range keys {
		var buf [16]byte
		rng.Read(buf[:])
		sum := sha256.Sum256(buf[:])
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

func shards(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("127.0.0.1:%d", 9000+i)
	}
	return out
}

// TestRingDistributionUniformity: with virtual nodes, key distribution
// across 8 shards stays within ±15% of uniform.
func TestRingDistributionUniformity(t *testing.T) {
	const nShards, nKeys = 8, 20000
	r := NewRing(0)
	for _, s := range shards(nShards) {
		r.Add(s)
	}
	counts := make(map[string]int, nShards)
	for _, k := range testKeys(nKeys) {
		owner := r.Owner(k)
		if owner == "" {
			t.Fatal("empty owner on a populated ring")
		}
		counts[owner]++
	}
	if len(counts) != nShards {
		t.Fatalf("only %d of %d shards own keys", len(counts), nShards)
	}
	uniform := float64(nKeys) / nShards
	for shard, c := range counts {
		dev := (float64(c) - uniform) / uniform
		if dev < -0.15 || dev > 0.15 {
			t.Errorf("shard %s owns %d keys (%.1f%% from uniform %0.f), want within ±15%%",
				shard, c, 100*dev, uniform)
		}
	}
}

// TestRingMinimalDisruption: removing one of N members remaps only the
// keys it owned (~1/N), and every other key keeps its owner exactly.
func TestRingMinimalDisruption(t *testing.T) {
	const nShards, nKeys = 8, 20000
	members := shards(nShards)
	r := NewRing(0)
	for _, s := range members {
		r.Add(s)
	}
	keys := testKeys(nKeys)
	before := make(map[string]string, nKeys)
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	removed := members[3]
	r.Remove(removed)

	remapped, ownedByRemoved := 0, 0
	for _, k := range keys {
		after := r.Owner(k)
		if after == removed {
			t.Fatalf("key %s still maps to removed member", k[:12])
		}
		if before[k] == removed {
			ownedByRemoved++
			remapped++
			continue
		}
		if after != before[k] {
			t.Errorf("key %s moved %s -> %s though its owner stayed in the ring",
				k[:12], before[k], after)
		}
	}
	// Exactly the removed member's keys remap, and that share is ~1/N.
	frac := float64(remapped) / nKeys
	if frac < 0.5/nShards || frac > 2.0/nShards {
		t.Errorf("remapped fraction %.3f, want ~1/%d", frac, nShards)
	}
	if remapped != ownedByRemoved {
		t.Errorf("remapped %d keys but removed member owned %d", remapped, ownedByRemoved)
	}

	// Re-adding restores the original mapping bit-for-bit.
	r.Add(removed)
	for _, k := range keys {
		if got := r.Owner(k); got != before[k] {
			t.Fatalf("after re-add, key %s maps to %s, want %s", k[:12], got, before[k])
		}
	}
}

// TestRingSequence: the failover sequence starts at the owner, lists
// distinct members, and its second entry absorbs the key on removal.
func TestRingSequence(t *testing.T) {
	r := NewRing(0)
	for _, s := range shards(4) {
		r.Add(s)
	}
	for _, k := range testKeys(200) {
		seq := r.Sequence(k, 3)
		if len(seq) != 3 {
			t.Fatalf("sequence length %d, want 3", len(seq))
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("sequence[0] = %s, owner = %s", seq[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("sequence repeats %s: %v", m, seq)
			}
			seen[m] = true
		}
		// Successor invariant: removing the owner hands the key to the
		// next member in the sequence.
		owner := seq[0]
		r.Remove(owner)
		if got := r.Owner(k); got != seq[1] {
			t.Fatalf("after removing %s, key owner = %s, want successor %s", owner, got, seq[1])
		}
		r.Add(owner)
	}
}

// TestRingStability: ownership is a pure function of (members, vnodes,
// key) — two independently built rings agree.
func TestRingStability(t *testing.T) {
	build := func() *Ring {
		r := NewRing(0)
		for _, s := range shards(5) {
			r.Add(s)
		}
		return r
	}
	a, b := build(), build()
	for _, k := range testKeys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on %s: %s vs %s", k[:12], a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(8)
	if r.Owner("abc") != "" {
		t.Fatal("empty ring returned an owner")
	}
	if seq := r.Sequence("abc", 2); seq != nil {
		t.Fatalf("empty ring returned sequence %v", seq)
	}
	r.Add("only")
	for _, k := range testKeys(50) {
		if r.Owner(k) != "only" {
			t.Fatal("single-member ring routed elsewhere")
		}
	}
	if got := r.Sequence("abc", 5); len(got) != 1 || got[0] != "only" {
		t.Fatalf("single-member sequence = %v", got)
	}
}
