package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"verifas/internal/fleet"
	"verifas/internal/service"
	"verifas/internal/service/client"
	"verifas/internal/store"
)

// replica is one live verifasd under test.
type replica struct {
	svc  *service.Server
	ts   *httptest.Server
	addr string
	node string
}

// startFleet boots n replicas sharing one store directory (tiered store
// + lease manager each, the production fleet shape) and a router over
// them with its first health sweep done.
func startFleet(t *testing.T, n int) (*fleet.Router, *httptest.Server, []*replica) {
	t.Helper()
	dir := t.TempDir()
	reps := make([]*replica, n)
	addrs := make([]string, n)
	for i := range reps {
		node := fmt.Sprintf("r%d", i)
		disk, err := store.OpenDisk(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		leases, err := store.OpenLeases(filepath.Join(dir, "leases"), node, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		svc := service.NewServer(service.Config{
			Workers: 2,
			NodeID:  node,
			Store:   store.NewTiered(store.NewMemory(16), disk),
			Leases:  leases,
		})
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = svc.Shutdown(ctx)
		})
		reps[i] = &replica{svc: svc, ts: ts, addr: ts.URL, node: node}
		addrs[i] = ts.URL
	}
	rt, err := fleet.NewRouter(fleet.RouterConfig{Replicas: addrs, Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckNow(context.Background())
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { front.Close(); rt.Close() })
	return rt, front, reps
}

// submitReq is the standard violated-verdict spec, with an option
// variant minting a distinct cache key per i.
func submitReq(i int) *service.SubmitRequest {
	return &service.SubmitRequest{
		Workflow: "OrderFulfillmentBuggy",
		PropertySrc: `property ship_stocked of ProcessOrders {
			define stocked := instock == "Yes"
			formula G (open(ShipItem) -> stocked)
		}`,
		Options: &service.RequestOptions{MaxStates: 10_000 + i},
	}
}

// postJob submits through url, returning the decoded status, the shard
// header, and the cache-tier header.
func postJob(t *testing.T, url string, req *service.SubmitRequest) (service.JobStatus, string, string) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("submit: %s", resp.Status)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st, resp.Header.Get(fleet.ShardHeader), resp.Header.Get(service.CacheTierHeader)
}

func routerStats(t *testing.T, url string) fleet.RouterStatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out fleet.RouterStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRouterKeyAffinity: every submission of the same spec lands on the
// same shard, repeats are cache hits, and the fleet runs each key's
// engine exactly once.
func TestRouterKeyAffinity(t *testing.T) {
	_, front, _ := startFleet(t, 3)
	ctx := context.Background()
	cl := client.New(front.URL)

	const distinct = 6
	shardOf := make(map[string]string)
	for i := 0; i < distinct; i++ {
		st, shard, _ := postJob(t, front.URL, submitReq(i))
		if shard == "" {
			t.Fatalf("submission %d carries no %s header", i, fleet.ShardHeader)
		}
		shardOf[st.Key] = shard
		if _, err := cl.Result(ctx, st.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	// Resubmits: same shard, answered from cache.
	for i := 0; i < distinct; i++ {
		st, shard, tier := postJob(t, front.URL, submitReq(i))
		if shard != shardOf[st.Key] {
			t.Errorf("key %s moved shard %s -> %s", st.Key, shardOf[st.Key], shard)
		}
		if !st.Cached || tier == string(store.TierMiss) {
			t.Errorf("resubmit %d not served from cache (tier %q)", i, tier)
		}
	}

	stats := routerStats(t, front.URL)
	if stats.Fleet.ReplicasSeen != 3 {
		t.Fatalf("stats fan-out reached %d replicas, want 3", stats.Fleet.ReplicasSeen)
	}
	if stats.Fleet.EngineRuns != distinct {
		t.Errorf("fleet engine runs = %d, want %d (one per key)", stats.Fleet.EngineRuns, distinct)
	}
	if stats.Router.Proxied < 2*distinct {
		t.Errorf("router proxied %d requests, want >= %d", stats.Router.Proxied, 2*distinct)
	}
}

// TestRouterIDRouting: id-addressed requests reach the issuing replica;
// ids naming no replica answer 502.
func TestRouterIDRouting(t *testing.T) {
	_, front, _ := startFleet(t, 3)
	ctx := context.Background()
	cl := client.New(front.URL)

	st, shard, _ := postJob(t, front.URL, submitReq(0))
	if got := service.NodeOfJobID(st.ID); got != shard {
		t.Fatalf("job id %q names node %q, shard header says %q", st.ID, got, shard)
	}
	got, err := cl.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != st.ID {
		t.Fatalf("status through router returned %q, want %q", got.ID, st.ID)
	}
	res, err := cl.Result(ctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != "violated" {
		t.Fatalf("verdict = %q, want violated", res.Verdict)
	}
	// The event stream proxies live through the router and terminates.
	var last service.StreamEvent
	n := 0
	if err := cl.Stream(ctx, st.ID, func(ev service.StreamEvent) error {
		last = ev
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n == 0 || last.Type != "verdict" {
		t.Fatalf("stream via router ended with %+v after %d events", last, n)
	}

	if _, err := cl.Status(ctx, "ghost-j-000001"); err == nil {
		t.Fatal("unknown shard id did not error")
	} else if ae, ok := err.(*client.APIError); !ok || ae.Status != http.StatusBadGateway || ae.Code != "unknown-shard" {
		t.Fatalf("unknown shard error = %v, want 502 unknown-shard", err)
	}
}

// TestRouterFailover: with a replica dead, its keys are served by ring
// successors — no submission is lost and failovers are counted.
func TestRouterFailover(t *testing.T) {
	rt, front, reps := startFleet(t, 3)
	ctx := context.Background()
	cl := client.New(front.URL)

	// Learn each key's owner, then kill one replica.
	owners := make(map[int]string)
	for i := 0; i < 8; i++ {
		_, shard, _ := postJob(t, front.URL, submitReq(i))
		owners[i] = shard
	}
	victim := reps[1]
	victim.ts.Close()
	rt.CheckNow(ctx)

	served := 0
	for i := 0; i < 8; i++ {
		if owners[i] != victim.node {
			continue
		}
		// The dead owner's key resubmitted: the ring successor takes it
		// and serves the verdict from the shared store.
		st, shard, _ := postJob(t, front.URL, submitReq(i))
		if shard == victim.node || shard == "" {
			t.Fatalf("key routed to dead shard %q", shard)
		}
		if _, err := cl.Result(ctx, st.ID, true); err != nil {
			t.Fatal(err)
		}
		served++
	}
	if served == 0 {
		t.Skip("no key owned by the killed replica (vnode layout)")
	}
	if got := rt.Metrics().Snapshot().Failovers; got == 0 {
		t.Error("failover counter stayed zero")
	}
}

// TestRouterRetryAfter429: a fleet-wide 429 is retried under the policy
// honoring Retry-After, and the final rejection is relayed verbatim.
func TestRouterRetryAfter429(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/readyz":
			json.NewEncoder(w).Encode(service.ReadyResponse{Ready: true, Node: "b0", QueueCapacity: 1})
		case "/v1/jobs":
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(service.ErrorBody{Error: service.ErrorDetail{Code: "queue-full", Message: "full"}})
		default:
			http.NotFound(w, r)
		}
	}))
	defer backend.Close()

	var slept []time.Duration
	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Replicas: []string{backend.URL},
		Retry: &client.RetryPolicy{
			MaxAttempts: 3,
			Jitter:      -1,
			Sleep: func(ctx context.Context, d time.Duration) error {
				slept = append(slept, d)
				return nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckNow(context.Background())
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	defer rt.Close()

	b, _ := json.Marshal(submitReq(0))
	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want relayed 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Errorf("Retry-After not relayed, header = %q", resp.Header.Get("Retry-After"))
	}
	if len(slept) != 2 {
		t.Fatalf("router slept %d times, want 2 (3 attempts)", len(slept))
	}
	for i, d := range slept {
		if d != 2*time.Second {
			t.Errorf("retry delay %d = %v, want the 2s Retry-After hint", i, d)
		}
	}
	if got := rt.Metrics().Snapshot().Retries429; got != 2 {
		t.Errorf("retries_429 = %d, want 2", got)
	}
}

// TestRouterReadyz: the router reports ready only once a replica is.
func TestRouterReadyz(t *testing.T) {
	svc := service.NewServer(service.Config{Workers: 1, NodeID: "r0"})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	rt, err := fleet.NewRouter(fleet.RouterConfig{Replicas: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	get := func() int {
		resp, err := http.Get(front.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get(); got != http.StatusServiceUnavailable {
		t.Fatalf("pre-sweep readyz = %d, want 503", got)
	}
	rt.CheckNow(context.Background())
	if got := get(); got != http.StatusOK {
		t.Fatalf("post-sweep readyz = %d, want 200", got)
	}
	// Liveness is unconditional.
	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
}
