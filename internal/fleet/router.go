package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"verifas/internal/service"
	"verifas/internal/service/client"
)

// ShardHeader is set on every proxied response, naming the replica that
// served the request — the wire-visible proof of key affinity that the
// ring property tests and the soak assert on.
const ShardHeader = "X-Verifas-Shard"

// DefaultHealthInterval is the readiness-poll period of the router's
// health checker.
const DefaultHealthInterval = 250 * time.Millisecond

// RouterConfig configures a fleet router.
type RouterConfig struct {
	// Replicas are the verifasd addresses ("host:port" or full URLs)
	// forming the ring. Required, at least one.
	Replicas []string
	// VNodes is the virtual-node count per replica (DefaultVNodes).
	VNodes int
	// HealthInterval is the /readyz poll period (DefaultHealthInterval).
	HealthInterval time.Duration
	// KeyDefaults mirror the replicas' server-side option defaults so
	// the router derives the same cache key a replica would assign. The
	// zero value matches a default-configured verifasd.
	KeyDefaults service.KeyDefaults
	// Retry, when set, re-issues a submission that every candidate
	// rejected with 429 under the policy's backoff (honoring
	// Retry-After) before giving up. Nil fails fast.
	Retry *client.RetryPolicy
	// Version is reported by the router's /healthz and /readyz.
	Version string
}

// Router is the fleet's stateless HTTP front door: it owns a
// consistent-hash ring over the configured replicas, routes each
// submission to the replica owning the job's cache key (so the
// cross-replica lease protocol degenerates to cheap local coalescing),
// routes id-addressed requests (status/result/events/cancel) to the
// replica that issued the id, and fails over along the ring's successor
// sequence when the owner is not ready.
//
// The router holds no job state of its own — any number of routers can
// front the same fleet, and a restarted router needs no recovery beyond
// its first health sweep.
type Router struct {
	cfg  RouterConfig
	ring *Ring
	mux  *http.ServeMux
	hc   *http.Client

	mu    sync.RWMutex
	state map[string]*replicaState // by address
	nodes map[string]string        // node id -> address

	met RouterMetrics

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// replicaState is the health checker's view of one replica.
type replicaState struct {
	Addr  string `json:"addr"`
	Node  string `json:"node,omitempty"`
	Ready bool   `json:"ready"`
	// LastErr is the most recent probe failure ("" when healthy).
	LastErr string `json:"last_error,omitempty"`
	// Proxied counts requests this replica served through the router —
	// the soak's admission-fairness assertion reads it.
	Proxied int64 `json:"proxied"`
}

// RouterMetrics are the router-level counters, exposed on /v1/stats and
// publishable as an expvar (it implements expvar.Var).
type RouterMetrics struct {
	proxied      atomic.Int64
	failovers    atomic.Int64
	retries429   atomic.Int64
	noReady      atomic.Int64
	badKey       atomic.Int64
	unknownShard atomic.Int64
	healthProbes atomic.Int64
}

// RouterMetricsSnapshot is the JSON form of RouterMetrics.
type RouterMetricsSnapshot struct {
	// Proxied counts requests forwarded to a replica (any outcome).
	Proxied int64 `json:"proxied"`
	// Failovers counts attempts abandoned for the next ring successor
	// (transport failure or a not-ready 502/503 answer).
	Failovers int64 `json:"failovers"`
	// Retries429 counts submissions re-issued after a fleet-wide 429.
	Retries429 int64 `json:"retries_429"`
	// NoReady counts requests refused because no candidate was ready.
	NoReady int64 `json:"no_ready"`
	// BadKey counts submissions whose cache key could not be derived
	// (malformed spec) — proxied to the first ready replica for the
	// authoritative structured error.
	BadKey int64 `json:"bad_key"`
	// UnknownShard counts id-addressed requests whose node id matched no
	// known replica.
	UnknownShard int64 `json:"unknown_shard"`
	// HealthProbes counts /readyz probes issued by the health checker.
	HealthProbes int64 `json:"health_probes"`
}

// Snapshot returns the current counter values.
func (m *RouterMetrics) Snapshot() RouterMetricsSnapshot {
	return RouterMetricsSnapshot{
		Proxied:      m.proxied.Load(),
		Failovers:    m.failovers.Load(),
		Retries429:   m.retries429.Load(),
		NoReady:      m.noReady.Load(),
		BadKey:       m.badKey.Load(),
		UnknownShard: m.unknownShard.Load(),
		HealthProbes: m.healthProbes.Load(),
	}
}

// String implements expvar.Var.
func (m *RouterMetrics) String() string {
	b, _ := json.Marshal(m.Snapshot())
	return string(b)
}

// RouterStatsResponse is the body of the router's GET /v1/stats.
type RouterStatsResponse struct {
	Router   RouterMetricsSnapshot `json:"router"`
	Replicas []replicaState        `json:"replicas"`
	// Fleet aggregates the reachable replicas' singleflight and store
	// counters — the fleet-wide "each key ran an engine at most once"
	// evidence in one scrape.
	Fleet FleetAggregate `json:"fleet"`
}

// FleetAggregate sums the per-replica counters that matter fleet-wide.
type FleetAggregate struct {
	// ReplicasSeen is how many replicas answered the stats fan-out.
	ReplicasSeen int `json:"replicas_seen"`
	// EngineRuns is the total engine executions across the fleet.
	EngineRuns int64 `json:"engine_runs"`
	// Coalesced sums local singleflight joins; LeaseWaits and
	// LeaseCoalesced the cross-replica ones; LeaseExpiries the stale
	// leases taken over or swept.
	Coalesced      int64 `json:"coalesced"`
	LeaseWaits     int64 `json:"lease_waits"`
	LeaseCoalesced int64 `json:"lease_coalesced"`
	LeaseExpiries  int64 `json:"lease_expiries"`
	// CacheHits sums both store tiers' hits; MemoryHits and DiskHits
	// split them per tier.
	CacheHits  int64 `json:"cache_hits"`
	MemoryHits int64 `json:"memory_hits"`
	DiskHits   int64 `json:"disk_hits"`
}

// NewRouter builds a router over the configured replicas. Every replica
// starts not-ready; call Start (or CheckNow) to populate readiness
// before serving.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: no replicas configured")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	rt := &Router{
		cfg:   cfg,
		ring:  NewRing(cfg.VNodes),
		hc:    &http.Client{},
		state: make(map[string]*replicaState, len(cfg.Replicas)),
		nodes: make(map[string]string, len(cfg.Replicas)),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, addr := range cfg.Replicas {
		addr = normalizeAddr(addr)
		if _, dup := rt.state[addr]; dup {
			return nil, fmt.Errorf("fleet: duplicate replica %s", addr)
		}
		rt.state[addr] = &replicaState{Addr: addr}
		rt.ring.Add(addr)
	}
	rt.routes()
	return rt, nil
}

func normalizeAddr(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimSuffix(addr, "/")
}

// Start launches the background health checker. Close stops it.
func (rt *Router) Start() {
	go func() {
		defer close(rt.done)
		t := time.NewTicker(rt.cfg.HealthInterval)
		defer t.Stop()
		rt.CheckNow(context.Background())
		for {
			select {
			case <-rt.stop:
				return
			case <-t.C:
				rt.CheckNow(context.Background())
			}
		}
	}()
}

// Close stops the health checker (idempotent).
func (rt *Router) Close() {
	rt.once.Do(func() { close(rt.stop) })
	select {
	case <-rt.done:
	case <-time.After(time.Second):
	}
}

// Metrics exposes the router-level counters (e.g. for expvar.Publish).
func (rt *Router) Metrics() *RouterMetrics { return &rt.met }

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// CheckNow probes every replica's /readyz once, synchronously, updating
// readiness and the node-to-address map. Tests and the serve loop's
// startup call it directly; the background checker calls it on a timer.
func (rt *Router) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for addr := range rt.state {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			rt.probe(ctx, addr)
		}(addr)
	}
	wg.Wait()
}

func (rt *Router) probe(ctx context.Context, addr string) {
	rt.met.healthProbes.Add(1)
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthInterval*4)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, addr+"/readyz", nil)
	if err != nil {
		rt.setHealth(addr, "", false, err.Error())
		return
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		rt.setHealth(addr, "", false, err.Error())
		return
	}
	defer resp.Body.Close()
	var body service.ReadyResponse
	if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); derr != nil {
		rt.setHealth(addr, "", false, fmt.Sprintf("decoding readyz: %v", derr))
		return
	}
	errMsg := ""
	if !body.Ready {
		switch {
		case body.Draining:
			errMsg = "draining"
		case body.Saturated:
			errMsg = "saturated"
		default:
			errMsg = resp.Status
		}
	}
	rt.setHealth(addr, body.Node, body.Ready, errMsg)
}

func (rt *Router) setHealth(addr, node string, ready bool, errMsg string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st := rt.state[addr]
	st.Ready = ready
	st.LastErr = errMsg
	if node != "" {
		st.Node = node
		rt.nodes[node] = addr
	}
}

func (rt *Router) ready(addr string) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	st, ok := rt.state[addr]
	return ok && st.Ready
}

// candidates returns the failover order for key: the ring owner first,
// then its successors clockwise. Readiness is applied at proxy time (and
// counted as failovers), not here, so the owner's position is stable.
func (rt *Router) candidates(key string) []string {
	return rt.ring.Sequence(key, rt.ring.Len())
}

// anyReady returns every replica, ready first (for requests with no key
// affinity, like a malformed submission needing an authoritative error).
func (rt *Router) anyReady() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	addrs := make([]string, 0, len(rt.state))
	for addr := range rt.state {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool {
		ri, rj := rt.state[addrs[i]].Ready, rt.state[addrs[j]].Ready
		if ri != rj {
			return ri
		}
		return addrs[i] < addrs[j]
	})
	return addrs
}

func (rt *Router) routes() {
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	rt.mux.HandleFunc("GET /v1/jobs/{id}", rt.handleByID)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/result", rt.handleByID)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/events", rt.handleByID)
	rt.mux.HandleFunc("DELETE /v1/jobs/{id}", rt.handleByID)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /readyz", rt.handleReady)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, service.ErrorBody{Error: service.ErrorDetail{Code: code, Message: msg}})
}

// handleSubmit derives the submission's cache key and proxies to the
// owning replica, failing over along the ring; a fleet-wide 429 is
// retried under the configured policy.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad-request", fmt.Sprintf("reading body: %v", err))
		return
	}
	var targets []string
	var req service.SubmitRequest
	if jerr := json.Unmarshal(body, &req); jerr != nil {
		rt.met.badKey.Add(1)
		targets = rt.anyReady()
	} else if key, kerr := service.RequestKey(&req, rt.cfg.KeyDefaults); kerr != nil {
		// Undecidable key (unknown workflow, bad property...): any
		// replica produces the authoritative structured 4xx.
		rt.met.badKey.Add(1)
		targets = rt.anyReady()
	} else {
		targets = rt.candidates(key)
	}

	for attempt := 1; ; attempt++ {
		last, done := rt.proxyFailover(w, r, targets, body, true)
		if done {
			return
		}
		// Every candidate answered 429: the fleet is saturated, not
		// broken. Back off and re-issue if the policy allows.
		if last != nil && last.status == http.StatusTooManyRequests &&
			rt.cfg.Retry != nil && attempt < rt.cfg.Retry.Attempts() {
			if rt.cfg.Retry.Wait(r.Context(), rt.cfg.Retry.Delay(attempt, last.retryAfter)) != nil {
				rt.replay(w, last)
				return
			}
			rt.met.retries429.Add(1)
			continue
		}
		if last != nil {
			rt.replay(w, last)
			return
		}
		rt.met.noReady.Add(1)
		writeErr(w, http.StatusServiceUnavailable, "no-ready-shard", "no replica is ready")
		return
	}
}

// handleByID routes status/result/events/cancel to the replica that
// issued the job id (its node prefix). Ids from unknown nodes get 502:
// the shard may be restarting, a retrying client should try again.
func (rt *Router) handleByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	node := service.NodeOfJobID(id)
	rt.mu.RLock()
	addr, ok := rt.nodes[node]
	rt.mu.RUnlock()
	if node == "" || !ok {
		rt.met.unknownShard.Add(1)
		writeErr(w, http.StatusBadGateway, "unknown-shard",
			fmt.Sprintf("job %q names no known replica", id))
		return
	}
	// No failover: job records live only on the issuing replica. A
	// not-ready (draining/saturated) replica still answers id reads.
	if _, done := rt.proxyFailover(w, r, []string{addr}, nil, false); !done {
		writeErr(w, http.StatusBadGateway, "shard-unreachable",
			fmt.Sprintf("replica %s did not answer", addr))
	}
}

// proxied is a buffered non-2xx answer kept for replay after failover
// exhausts the candidates.
type proxied struct {
	status     int
	header     http.Header
	body       []byte
	retryAfter time.Duration
}

// proxyFailover forwards the request to the first candidate that
// answers, in order. A candidate reported not-ready (when requireReady),
// unreachable, or answering 429/502/503 counts a failover and yields to
// the next; any other answer is relayed (streamed, for event streams)
// and the call returns done=true. When every candidate fails, the last
// buffered answer (nil if all failed at transport level) is returned for
// the caller to replay or replace.
func (rt *Router) proxyFailover(w http.ResponseWriter, r *http.Request, targets []string, body []byte, requireReady bool) (last *proxied, done bool) {
	tried := 0
	for _, addr := range targets {
		if tried > 0 {
			rt.met.failovers.Add(1)
		}
		tried++
		if requireReady && !rt.ready(addr) {
			continue
		}
		resp, err := rt.forward(r, addr, body)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode == http.StatusTooManyRequests {
			// Buffer the rejection and try the next candidate; it is
			// replayed only if nobody else answers. 429 fails over too:
			// another shard may have capacity (at the cost of a lease
			// wait instead of local coalescing).
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			last = &proxied{status: resp.StatusCode, header: resp.Header, body: b}
			if secs := resp.Header.Get("Retry-After"); secs != "" {
				if d, perr := time.ParseDuration(secs + "s"); perr == nil {
					last.retryAfter = d
				}
			}
			continue
		}
		rt.met.proxied.Add(1)
		rt.countProxied(addr)
		rt.relay(w, resp, rt.nodeOf(addr))
		return nil, true
	}
	return last, false
}

// forward issues one copy of the inbound request to addr.
func (rt *Router) forward(r *http.Request, addr string, body []byte) (*http.Response, error) {
	url := addr + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, rd)
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "Accept", "Accept-Encoding"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	return rt.hc.Do(req)
}

// relay copies a replica's response to the client, streaming (with
// per-write flushes) so event streams arrive live.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, node string) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Cache-Control", "Retry-After", service.CacheTierHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if node != "" {
		w.Header().Set(ShardHeader, node)
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// replay writes a buffered replica answer to the client.
func (rt *Router) replay(w http.ResponseWriter, p *proxied) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := p.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(p.status)
	_, _ = w.Write(p.body)
}

func (rt *Router) countProxied(addr string) {
	rt.mu.Lock()
	rt.state[addr].Proxied++
	rt.mu.Unlock()
}

func (rt *Router) nodeOf(addr string) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if st, ok := rt.state[addr]; ok {
		return st.Node
	}
	return ""
}

// handleStats reports the router counters, the per-replica health view,
// and a fleet-wide aggregate scraped live from every reachable replica.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rt.mu.RLock()
	replicas := make([]replicaState, 0, len(rt.state))
	for _, st := range rt.state {
		replicas = append(replicas, *st)
	}
	rt.mu.RUnlock()
	sort.Slice(replicas, func(i, j int) bool { return replicas[i].Addr < replicas[j].Addr })

	var agg FleetAggregate
	var wg sync.WaitGroup
	var aggMu sync.Mutex
	for _, st := range replicas {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			stats, err := rt.scrapeStats(r.Context(), addr)
			if err != nil {
				return
			}
			aggMu.Lock()
			defer aggMu.Unlock()
			agg.ReplicasSeen++
			agg.EngineRuns += stats.Service.EngineRuns
			agg.Coalesced += stats.Service.Coalesced
			agg.LeaseWaits += stats.Service.LeaseWaits
			agg.LeaseCoalesced += stats.Service.LeaseCoalesced
			if stats.Leases != nil {
				agg.LeaseExpiries += stats.Leases.Takeovers + stats.Leases.Swept
			}
			if t := stats.Store.Memory; t != nil {
				agg.CacheHits += t.Hits
				agg.MemoryHits += t.Hits
			}
			if t := stats.Store.Disk; t != nil {
				agg.CacheHits += t.Hits
				agg.DiskHits += t.Hits
			}
		}(st.Addr)
	}
	wg.Wait()

	writeJSON(w, http.StatusOK, RouterStatsResponse{
		Router:   rt.met.Snapshot(),
		Replicas: replicas,
		Fleet:    agg,
	})
}

func (rt *Router) scrapeStats(ctx context.Context, addr string) (*service.StatsResponse, error) {
	sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, addr+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: %s", resp.Status)
	}
	var out service.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"role":     "router",
		"version":  rt.cfg.Version,
		"replicas": len(rt.cfg.Replicas),
	})
}

// handleReady: the router is ready while at least one replica is.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	readyCount := 0
	rt.mu.RLock()
	for _, st := range rt.state {
		if st.Ready {
			readyCount++
		}
	}
	total := len(rt.state)
	rt.mu.RUnlock()
	status := http.StatusOK
	if readyCount == 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready":          readyCount > 0,
		"ready_replicas": readyCount,
		"replicas":       total,
		"version":        rt.cfg.Version,
	})
}
