// Package static implements the static-analysis optimization of the paper
// (Section 3.7): it builds the constraint graph of all = and ≠ edges that
// symbolic transitions of a compiled task system (and its property) can
// ever request, identifies the non-violating edges — those that can never
// participate in an inconsistency — and provides an EdgeFilter that lets
// partial isomorphism types skip recording them, shrinking the symbolic
// state space.
//
// Non-violating ≠-edges are those whose endpoints lie in different
// connected components of the =-edges; non-violating =-edges are those
// lying on no simple path of =-edges between the endpoints of a ≠-edge,
// two distinct constants, or null and a navigation expression. The latter
// test uses biconnected components: in a biconnected block, every edge lies
// on a simple path between any two block vertices, so an edge is violating
// exactly when its block lies on the block-cut-tree path between some
// terminal pair.
package static

import (
	"verifas/internal/symbolic"
)

// Filter is the computed edge filter.
type Filter struct {
	skipEq  map[uint64]bool
	skipNeq map[uint64]bool
	// Stats for reporting.
	TotalEq, TotalNeq, SkippableEq, SkippableNeq int
}

var _ symbolic.EdgeFilter = (*Filter)(nil)

func pairKey(a, b symbolic.ExprID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(uint32(b))
}

// SkipEq implements symbolic.EdgeFilter.
func (f *Filter) SkipEq(a, b symbolic.ExprID) bool {
	return f.skipEq[pairKey(a, b)]
}

// SkipNeq implements symbolic.EdgeFilter.
func (f *Filter) SkipNeq(a, b symbolic.ExprID) bool {
	return f.skipNeq[pairKey(a, b)]
}

// Analyze builds the constraint graph of the compiled task system and
// returns the filter of non-violating edges. The graph collects every
// literal of every compiled condition (closed under navigation congruence),
// the initial null assignments, and is closed under artifact-relation tuple
// transport (insert/retrieve channels); unknown edges are conservatively
// treated as violating.
func Analyze(ts *symbolic.TaskSystem) *Filter {
	g := &graph{
		u:   ts.U,
		eq:  map[uint64]bool{},
		neq: map[uint64]bool{},
		adj: map[symbolic.ExprID][]symbolic.ExprID{},
	}

	// 1. Base edges from all conditions.
	for _, cond := range ts.AllConditions() {
		for _, conj := range cond.Conjuncts {
			for _, lit := range conj {
				if lit.Neq {
					g.addNeq(lit.A, lit.B)
				} else {
					g.addEqRec(lit.A, lit.B)
				}
			}
		}
	}
	// 2. Initial null assignments.
	for _, root := range ts.InitialNullRoots() {
		g.addEqRec(root, ts.U.NullExpr)
	}
	// 3. Repeated-variable insertions equate slots.
	inserts, retrieves := ts.UpdateChannels()
	for _, ch := range inserts {
		for i := range ch {
			for j := i + 1; j < len(ch); j++ {
				if ch[i].From == ch[j].From {
					g.addEqRec(ch[i].To, ch[j].To)
				}
			}
		}
	}
	// 4. Transport closure: every edge both of whose endpoints transport
	// through an insert or retrieve channel induces the transported edge.
	channels := append(append([][]symbolic.RootPair{}, inserts...), retrieves...)
	g.transportClosure(channels)

	// 5. Classify.
	return g.classify()
}

type graph struct {
	u   *symbolic.Universe
	eq  map[uint64]bool // =-edges (canonical pair keys)
	neq map[uint64]bool
	adj map[symbolic.ExprID][]symbolic.ExprID // adjacency of =-edges
}

func (g *graph) addEq(a, b symbolic.ExprID) bool {
	if a == b {
		return false
	}
	k := pairKey(a, b)
	if g.eq[k] {
		return false
	}
	g.eq[k] = true
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	return true
}

// addEqRec adds an =-edge and, recursively, the navigation-child edges its
// congruence closure will request.
func (g *graph) addEqRec(a, b symbolic.ExprID) {
	if a == b {
		return
	}
	if !g.addEq(a, b) {
		return
	}
	ca, cb := g.u.NavAll(a), g.u.NavAll(b)
	if ca == nil || cb == nil {
		return
	}
	for i := range ca {
		g.addEqRec(ca[i], cb[i])
	}
}

func (g *graph) addNeq(a, b symbolic.ExprID) {
	if a == b {
		return
	}
	g.neq[pairKey(a, b)] = true
}

func decodePair(k uint64) (symbolic.ExprID, symbolic.ExprID) {
	return symbolic.ExprID(k >> 32), symbolic.ExprID(uint32(k))
}

// transportClosure closes the edge sets under the channel mappings.
func (g *graph) transportClosure(channels [][]symbolic.RootPair) {
	// Worklist of edges (encoded with a neq bit).
	type edge struct {
		k   uint64
		neq bool
	}
	var work []edge
	for k := range g.eq {
		work = append(work, edge{k, false})
	}
	for k := range g.neq {
		work = append(work, edge{k, true})
	}
	images := func(e symbolic.ExprID, ch []symbolic.RootPair) []symbolic.ExprID {
		if g.u.IsConstLike(e) {
			return []symbolic.ExprID{e}
		}
		root := g.u.RootOf(e)
		var out []symbolic.ExprID
		for _, p := range ch {
			if p.From == root {
				if img := g.u.Transport(e, p.From, p.To); img != symbolic.NoExpr {
					out = append(out, img)
				}
			}
		}
		return out
	}
	for len(work) > 0 {
		e := work[len(work)-1]
		work = work[:len(work)-1]
		a, b := decodePair(e.k)
		for _, ch := range channels {
			for _, ia := range images(a, ch) {
				for _, ib := range images(b, ch) {
					if ia == ib {
						continue
					}
					k := pairKey(ia, ib)
					if e.neq {
						if !g.neq[k] {
							g.neq[k] = true
							work = append(work, edge{k, true})
						}
					} else {
						if g.addEq(ia, ib) {
							work = append(work, edge{k, false})
						}
					}
				}
			}
		}
	}
}

// classify runs the connectivity and biconnectivity analyses and builds
// the filter.
func (g *graph) classify() *Filter {
	f := &Filter{skipEq: map[uint64]bool{}, skipNeq: map[uint64]bool{}}
	f.TotalEq, f.TotalNeq = len(g.eq), len(g.neq)

	// Connected components of the =-edges.
	comp := map[symbolic.ExprID]int{}
	var order []symbolic.ExprID
	for v := range g.adj {
		order = append(order, v)
	}
	nc := 0
	for _, v := range order {
		if _, seen := comp[v]; seen {
			continue
		}
		stack := []symbolic.ExprID{v}
		comp[v] = nc
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range g.adj[x] {
				if _, seen := comp[y]; !seen {
					comp[y] = nc
					stack = append(stack, y)
				}
			}
		}
		nc++
	}
	sameComp := func(a, b symbolic.ExprID) bool {
		ca, oka := comp[a]
		cb, okb := comp[b]
		return oka && okb && ca == cb
	}

	// Terminal pairs: explicit ≠-edges, distinct constant pairs, and
	// null-vs-navigation pairs — restricted to pairs within one
	// =-component (others are irrelevant).
	var terminals [][2]symbolic.ExprID
	for k := range g.neq {
		a, b := decodePair(k)
		if sameComp(a, b) {
			terminals = append(terminals, [2]symbolic.ExprID{a, b})
		}
		// Non-violating ≠-edges: endpoints in distinct components.
		if !sameComp(a, b) {
			f.skipNeq[k] = true
			f.SkippableNeq++
		}
	}
	// Collect graph vertices by kind for the implicit pairs.
	var consts, navs []symbolic.ExprID
	for v := range g.adj {
		switch g.u.Exprs[v].Kind {
		case symbolic.EConst, symbolic.ENull:
			consts = append(consts, v)
		case symbolic.ENav:
			navs = append(navs, v)
		}
	}
	for i := 0; i < len(consts); i++ {
		for j := i + 1; j < len(consts); j++ {
			if sameComp(consts[i], consts[j]) {
				terminals = append(terminals, [2]symbolic.ExprID{consts[i], consts[j]})
			}
		}
	}
	for _, v := range navs {
		if sameComp(v, g.u.NullExpr) {
			terminals = append(terminals, [2]symbolic.ExprID{v, g.u.NullExpr})
		}
	}

	// Biconnected components of the =-edges; mark blocks on terminal
	// paths as violating.
	bc := biconnect(g)
	violatingBlock := make([]bool, bc.numBlocks)
	for _, t := range terminals {
		bc.markPathBlocks(t[0], t[1], violatingBlock)
	}
	for k := range g.eq {
		if blk, ok := bc.edgeBlock[k]; !ok || !violatingBlock[blk] {
			f.skipEq[k] = true
			f.SkippableEq++
		}
	}
	return f
}
