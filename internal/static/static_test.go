package static

import (
	"testing"

	"verifas/internal/fol"
	"verifas/internal/has"
	"verifas/internal/symbolic"
)

// valUniverse builds a universe of value roots e1..e7 (no navigation), to
// reproduce the shapes of the paper's Figure 8.
func valUniverse(t *testing.T) (*symbolic.Universe, map[string]symbolic.ExprID) {
	t.Helper()
	schema := has.NewSchema(has.RelDef("R", has.NK("A")))
	if err := schema.Validate(); err != nil {
		t.Fatal(err)
	}
	b := symbolic.NewUniverseBuilder(schema)
	names := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7"}
	for _, n := range names {
		b.AddRoot(n, has.ValType(), symbolic.StateRoot)
	}
	u := b.Build()
	m := map[string]symbolic.ExprID{}
	for _, n := range names {
		id, ok := u.Root(n)
		if !ok {
			t.Fatalf("missing root %s", n)
		}
		m[n] = id
	}
	return u, m
}

func newGraph(u *symbolic.Universe) *graph {
	return &graph{
		u:   u,
		eq:  map[uint64]bool{},
		neq: map[uint64]bool{},
		adj: map[symbolic.ExprID][]symbolic.ExprID{},
	}
}

// TestFigure8Left reproduces G1 of the paper's Example 25: two =-connected
// components {e1..e4} and {e5,e6,e7} with a ≠-edge (e3,e5) across them.
// The ≠-edge is non-violating.
func TestFigure8Left(t *testing.T) {
	u, m := valUniverse(t)
	g := newGraph(u)
	g.addEqRec(m["e1"], m["e2"])
	g.addEqRec(m["e2"], m["e3"])
	g.addEqRec(m["e3"], m["e4"])
	g.addEqRec(m["e4"], m["e1"])
	g.addEqRec(m["e5"], m["e6"])
	g.addEqRec(m["e6"], m["e7"])
	g.addNeq(m["e3"], m["e5"])
	f := g.classify()
	if !f.SkipNeq(m["e3"], m["e5"]) {
		t.Error("cross-component ≠-edge should be non-violating")
	}
}

// TestFigure8Right reproduces G2: a path e1-e2-e3-e5-e6-e7 (plus e2-e4
// hanging off) with ≠-edges (e2,e3) and (e5,e6). The =-edge (e3,e5) lies
// on no simple path between the endpoints of either ≠-edge, so it is
// non-violating; the edge (e2,e3) does (the ≠(e2,e3) endpoints are
// directly joined by it), so it is violating.
func TestFigure8Right(t *testing.T) {
	u, m := valUniverse(t)
	g := newGraph(u)
	g.addEqRec(m["e1"], m["e2"])
	g.addEqRec(m["e2"], m["e3"])
	g.addEqRec(m["e2"], m["e4"])
	g.addEqRec(m["e3"], m["e5"])
	g.addEqRec(m["e5"], m["e6"])
	g.addEqRec(m["e6"], m["e7"])
	g.addNeq(m["e2"], m["e3"])
	g.addNeq(m["e5"], m["e6"])
	f := g.classify()
	if !f.SkipEq(m["e3"], m["e5"]) {
		t.Error("(e3,e5) should be non-violating (on no terminal simple path)")
	}
	if f.SkipEq(m["e2"], m["e3"]) {
		t.Error("(e2,e3) is on a simple path between ≠(e2,e3) endpoints")
	}
	if f.SkipEq(m["e5"], m["e6"]) {
		t.Error("(e5,e6) is on a simple path between ≠(e5,e6) endpoints")
	}
	// ≠-edges within one component are violating.
	if f.SkipNeq(m["e2"], m["e3"]) || f.SkipNeq(m["e5"], m["e6"]) {
		t.Error("same-component ≠-edges must stay")
	}
	// (e2,e4) dangles: violating only if on a terminal path — it is not.
	if !f.SkipEq(m["e2"], m["e4"]) {
		t.Error("(e2,e4) dangles off every terminal path; should be skippable")
	}
}

// A cycle makes all its edges violating when a terminal pair sits on it:
// within a biconnected block every edge lies on a simple path between any
// two block vertices.
func TestCycleBlockViolating(t *testing.T) {
	u, m := valUniverse(t)
	g := newGraph(u)
	g.addEqRec(m["e1"], m["e2"])
	g.addEqRec(m["e2"], m["e3"])
	g.addEqRec(m["e3"], m["e1"])
	g.addNeq(m["e1"], m["e2"])
	f := g.classify()
	for _, pair := range [][2]string{{"e1", "e2"}, {"e2", "e3"}, {"e3", "e1"}} {
		if f.SkipEq(m[pair[0]], m[pair[1]]) {
			t.Errorf("(%s,%s) lies in the terminal block; must be violating", pair[0], pair[1])
		}
	}
}

// Distinct constants are implicit terminals.
func TestConstantTerminals(t *testing.T) {
	schema := has.NewSchema(has.RelDef("R", has.NK("A")))
	if err := schema.Validate(); err != nil {
		t.Fatal(err)
	}
	b := symbolic.NewUniverseBuilder(schema)
	b.AddConst("a")
	b.AddConst("b")
	b.AddRoot("x", has.ValType(), symbolic.StateRoot)
	b.AddRoot("y", has.ValType(), symbolic.StateRoot)
	u := b.Build()
	x, _ := u.Root("x")
	y, _ := u.Root("y")
	ca, _ := u.Const("a")
	cb, _ := u.Const("b")
	g := newGraph(u)
	// Path "a" - x - y - "b": every edge is on the constants' simple path.
	g.addEqRec(ca, x)
	g.addEqRec(x, y)
	g.addEqRec(y, cb)
	f := g.classify()
	for _, pair := range [][2]symbolic.ExprID{{ca, x}, {x, y}, {y, cb}} {
		if f.SkipEq(pair[0], pair[1]) {
			t.Error("edge on a constant-constant path must be violating")
		}
	}
}

// Unknown edges (not in the graph) are conservatively violating.
func TestUnknownEdgesNotSkipped(t *testing.T) {
	u, m := valUniverse(t)
	g := newGraph(u)
	g.addEqRec(m["e1"], m["e2"])
	f := g.classify()
	if f.SkipEq(m["e3"], m["e4"]) {
		t.Error("edge absent from the constraint graph must not be skipped")
	}
	if f.SkipNeq(m["e3"], m["e4"]) {
		t.Error("≠-edge absent from the graph must not be skipped")
	}
	// (e1,e2) has no terminals anywhere: skippable.
	if !f.SkipEq(m["e1"], m["e2"]) {
		t.Error("(e1,e2) has no terminal pairs; should be skippable")
	}
}

// End-to-end: analyzing a real compiled task system runs and produces a
// filter under which evaluation still works (consistency preserved on a
// spot check).
func TestAnalyzeCompiledSystem(t *testing.T) {
	schema := has.NewSchema(
		has.RelDef("CREDIT", has.NK("status")),
		has.RelDef("CUSTOMERS", has.NK("name"), has.FK("record", "CREDIT")),
	)
	root := &has.Task{
		Name: "Main",
		Vars: []has.Variable{has.IDV("cust", "CUSTOMERS"), has.V("status")},
		Services: []*has.Service{
			{
				Name: "Check",
				Pre:  fol.MustParse(`cust != null`),
				Post: fol.MustParse(`exists n : val, r : CREDIT (CUSTOMERS(cust, n, r) && CREDIT(r, "Good") && status == "Passed")`),
			},
			{
				Name: "Reset",
				Pre:  fol.MustParse(`status == "Passed"`),
				Post: fol.MustParse(`status == null && cust == null`),
			},
		},
	}
	sys := &has.System{Name: "t", Schema: schema, Root: root,
		GlobalPre: fol.MustParse(`cust == null && status == null`)}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	ts, err := symbolic.CompileTask(sys, sys.Root, symbolic.PropertyBinding{}, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := Analyze(ts)
	if f.TotalEq == 0 {
		t.Fatal("constraint graph is empty")
	}
	t.Logf("eq %d/%d skippable, neq %d/%d skippable", f.SkippableEq, f.TotalEq, f.SkippableNeq, f.TotalNeq)

	// The run with the filter still distinguishes the crucial
	// consistency: status=="Passed" vs status==null must conflict, since
	// "Passed"(const) and null are terminals connected through status.
	ts.SetFilter(f)
	init := ts.Initial()
	if len(init) != 1 {
		t.Fatalf("unexpected initial count %d", len(init))
	}
	tau := init[0].Tau
	status, _ := ts.U.Root("status")
	passed, ok := ts.U.Const("Passed")
	if !ok {
		t.Fatal("constant missing")
	}
	if tau.Clone().AddEq(status, passed) {
		t.Error("status=null then status=Passed must stay inconsistent under the filter")
	}
}
