package static

import (
	"verifas/internal/symbolic"
)

// bctree holds the biconnected-component decomposition of the =-edge graph
// and the block-cut incidence needed to mark blocks on terminal paths.
type bctree struct {
	numBlocks     int
	edgeBlock     map[uint64]int
	vertexBlocks  map[symbolic.ExprID][]int
	blockVertices [][]symbolic.ExprID
}

// biconnect computes biconnected components of g's =-edges with an
// iterative Hopcroft-Tarjan DFS.
func biconnect(g *graph) *bctree {
	bc := &bctree{
		edgeBlock:    map[uint64]int{},
		vertexBlocks: map[symbolic.ExprID][]int{},
	}
	disc := map[symbolic.ExprID]int{}
	low := map[symbolic.ExprID]int{}
	counter := 0
	var edgeStack []uint64

	type frame struct {
		v      symbolic.ExprID
		parent symbolic.ExprID
		ei     int
	}

	emitBlock := func(stopEdge uint64) {
		blk := bc.numBlocks
		bc.numBlocks++
		verts := map[symbolic.ExprID]bool{}
		for {
			if len(edgeStack) == 0 {
				break
			}
			ek := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			bc.edgeBlock[ek] = blk
			a, b := decodePair(ek)
			verts[a] = true
			verts[b] = true
			if ek == stopEdge {
				break
			}
		}
		var vs []symbolic.ExprID
		for v := range verts {
			vs = append(vs, v)
			bc.vertexBlocks[v] = append(bc.vertexBlocks[v], blk)
		}
		bc.blockVertices = append(bc.blockVertices, vs)
	}

	var roots []symbolic.ExprID
	for v := range g.adj {
		roots = append(roots, v)
	}
	for _, root := range roots {
		if _, seen := disc[root]; seen {
			continue
		}
		stack := []frame{{v: root, parent: symbolic.NoExpr}}
		disc[root], low[root] = counter, counter
		counter++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ei < len(g.adj[f.v]) {
				w := g.adj[f.v][f.ei]
				f.ei++
				if w == f.parent {
					continue
				}
				ek := pairKey(f.v, w)
				dw, seen := disc[w]
				if !seen {
					edgeStack = append(edgeStack, ek)
					disc[w], low[w] = counter, counter
					counter++
					stack = append(stack, frame{v: w, parent: f.v})
				} else if dw < disc[f.v] {
					// Back edge.
					edgeStack = append(edgeStack, ek)
					if dw < low[f.v] {
						low[f.v] = dw
					}
				}
				continue
			}
			// Finished v; propagate low to parent and emit block if v's
			// subtree hangs off an articulation point.
			v := f.v
			parent := f.parent
			stack = stack[:len(stack)-1]
			if parent == symbolic.NoExpr {
				continue
			}
			if low[v] < low[parent] {
				low[parent] = low[v]
			}
			if low[v] >= disc[parent] {
				emitBlock(pairKey(parent, v))
			}
		}
	}
	return bc
}

// markPathBlocks marks (in mark) every block on the block-cut-tree path
// between vertices u and v. No-op when u or v is not in the =-graph or no
// path exists.
func (bc *bctree) markPathBlocks(u, v symbolic.ExprID, mark []bool) {
	ubs, vbs := bc.vertexBlocks[u], bc.vertexBlocks[v]
	if len(ubs) == 0 || len(vbs) == 0 {
		return
	}
	goal := map[int]bool{}
	for _, b := range vbs {
		goal[b] = true
	}
	// BFS over the bipartite block/vertex incidence starting from u's
	// blocks; parent pointers reconstruct the block path.
	type bnode struct {
		block  int
		parent int // index into nodes, -1 for start
	}
	var nodes []bnode
	seenBlock := map[int]bool{}
	seenVertex := map[symbolic.ExprID]bool{u: true}
	var queue []int
	for _, b := range ubs {
		nodes = append(nodes, bnode{block: b, parent: -1})
		seenBlock[b] = true
		queue = append(queue, len(nodes)-1)
	}
	for len(queue) > 0 {
		ni := queue[0]
		queue = queue[1:]
		b := nodes[ni].block
		if goal[b] {
			for i := ni; i != -1; i = nodes[i].parent {
				mark[nodes[i].block] = true
			}
			return
		}
		for _, w := range bc.blockVertices[b] {
			if seenVertex[w] {
				continue
			}
			seenVertex[w] = true
			for _, nb := range bc.vertexBlocks[w] {
				if !seenBlock[nb] {
					seenBlock[nb] = true
					nodes = append(nodes, bnode{block: nb, parent: ni})
					queue = append(queue, len(nodes)-1)
				}
			}
		}
	}
}
