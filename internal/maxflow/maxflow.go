// Package maxflow provides a Dinic max-flow solver used by VERIFAS to
// decide the ⪯ pruning relation between partial symbolic instances (paper
// Section 3.5): whether the stored-tuple multiset of one instance can be
// mapped one-to-one onto less-restrictive tuples of another.
package maxflow

import "math"

// Inf is the capacity representing an unbounded edge.
const Inf int64 = math.MaxInt64 / 4

// Graph is a flow network under construction. Nodes are dense ints
// allocated by AddNode.
type Graph struct {
	head []int32
	next []int32
	to   []int32
	cap  []int64

	level []int32
	iter  []int32
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph {
	g := &Graph{head: make([]int32, n)}
	for i := range g.head {
		g.head[i] = -1
	}
	return g
}

// AddNode adds a node and returns its index.
func (g *Graph) AddNode() int {
	g.head = append(g.head, -1)
	return len(g.head) - 1
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.head) }

// AddEdge adds a directed edge u->v with the given capacity (and the
// implicit residual reverse edge).
func (g *Graph) AddEdge(u, v int, capacity int64) {
	g.push(u, v, capacity)
	g.push(v, u, 0)
}

func (g *Graph) push(u, v int, c int64) {
	g.next = append(g.next, g.head[u])
	g.to = append(g.to, int32(v))
	g.cap = append(g.cap, c)
	g.head[u] = int32(len(g.to) - 1)
}

func (g *Graph) bfs(s, t int) bool {
	g.level = make([]int32, len(g.head))
	for i := range g.level {
		g.level[i] = -1
	}
	queue := []int32{int32(s)}
	g.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for e := g.head[u]; e != -1; e = g.next[e] {
			v := g.to[e]
			if g.cap[e] > 0 && g.level[v] < 0 {
				g.level[v] = g.level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return g.level[t] >= 0
}

func (g *Graph) dfs(u, t int, f int64) int64 {
	if u == t {
		return f
	}
	for ; g.iter[u] != -1; g.iter[u] = g.next[g.iter[u]] {
		e := g.iter[u]
		v := int(g.to[e])
		if g.cap[e] > 0 && g.level[v] == g.level[u]+1 {
			d := g.dfs(v, t, min64(f, g.cap[e]))
			if d > 0 {
				g.cap[e] -= d
				g.cap[e^1] += d
				return d
			}
		}
	}
	return 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxFlow computes the maximum s-t flow. The graph's capacities are
// consumed; build a fresh graph per query.
func (g *Graph) MaxFlow(s, t int) int64 {
	var flow int64
	for g.bfs(s, t) {
		g.iter = append([]int32(nil), g.head...)
		for {
			f := g.dfs(s, t, Inf)
			if f == 0 {
				break
			}
			flow += f
			if flow >= Inf {
				return Inf
			}
		}
	}
	return flow
}
