package maxflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplePath(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	if f := g.MaxFlow(0, 2); f != 3 {
		t.Errorf("MaxFlow = %d, want 3", f)
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS-style example.
	g := NewGraph(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if f := g.MaxFlow(0, 5); f != 23 {
		t.Errorf("MaxFlow = %d, want 23", f)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(2, 3, 10)
	if f := g.MaxFlow(0, 3); f != 0 {
		t.Errorf("MaxFlow = %d, want 0", f)
	}
}

func TestInfiniteMiddle(t *testing.T) {
	// Bipartite with infinite middle edges: flow limited by the sides.
	g := NewGraph(6)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 3)
	g.AddEdge(1, 3, Inf)
	g.AddEdge(1, 4, Inf)
	g.AddEdge(2, 4, Inf)
	g.AddEdge(3, 5, 4)
	g.AddEdge(4, 5, 1)
	if f := g.MaxFlow(0, 5); f != 3 {
		t.Errorf("MaxFlow = %d, want 3", f)
	}
}

// brute computes max flow on small graphs by Ford-Fulkerson with DFS over
// an adjacency matrix, as an independent oracle.
func brute(n int, caps map[[2]int]int64, s, t int) int64 {
	c := make([][]int64, n)
	for i := range c {
		c[i] = make([]int64, n)
	}
	for k, v := range caps {
		c[k[0]][k[1]] += v
	}
	var flow int64
	for {
		// find augmenting path
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		stack := []int{s}
		for len(stack) > 0 && parent[t] == -1 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for v := 0; v < n; v++ {
				if c[u][v] > 0 && parent[v] == -1 {
					parent[v] = u
					stack = append(stack, v)
				}
			}
		}
		if parent[t] == -1 {
			return flow
		}
		aug := int64(1 << 62)
		for v := t; v != s; v = parent[v] {
			if c[parent[v]][v] < aug {
				aug = c[parent[v]][v]
			}
		}
		for v := t; v != s; v = parent[v] {
			c[parent[v]][v] -= aug
			c[v][parent[v]] += aug
		}
		flow += aug
	}
}

// Property: Dinic agrees with a brute-force Ford-Fulkerson oracle on random
// small graphs.
func TestQuickAgainstBrute(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(7)
		caps := map[[2]int]int64{}
		g := NewGraph(n)
		edges := r.Intn(20)
		for i := 0; i < edges; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			c := int64(r.Intn(10))
			caps[[2]int{u, v}] += c
			g.AddEdge(u, v, c)
		}
		want := brute(n, caps, 0, n-1)
		got := g.MaxFlow(0, n-1)
		if got != want {
			t.Logf("n=%d caps=%v: dinic=%d brute=%d", n, caps, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAddNode(t *testing.T) {
	g := NewGraph(1)
	a := g.AddNode()
	b := g.AddNode()
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	g.AddEdge(0, a, 7)
	g.AddEdge(a, b, 5)
	if f := g.MaxFlow(0, b); f != 5 {
		t.Errorf("MaxFlow = %d, want 5", f)
	}
}
