package spinlike

import (
	"context"

	"verifas/internal/core"
	"verifas/internal/has"
)

// Variant is the canonical benchmark label of the bounded baseline,
// matching the naming scheme of core.Options.Variant.
const Variant = "Spin-like"

// Registry names of the baseline's configurations.
const (
	// EngineName is the exact bounded baseline.
	EngineName = "spinlike"
	// BitstateEngineName is the bitstate-hashing variant (lossy).
	BitstateEngineName = "spinlike-bitstate"
)

// Caps returns the decisiveness caveats of a configuration: the bounded
// domain makes every "holds" advisory, artifact relations are always
// ignored, and bitstate hashing adds lossiness.
func (o Options) Caps() core.Capabilities {
	return core.Capabilities{
		BoundedHolds: true,
		IgnoresSets:  true,
		Lossy:        o.Bitstate,
	}
}

// name is the registry spelling of a configuration.
func (o Options) name() string {
	if o.Bitstate {
		return BitstateEngineName
	}
	return EngineName
}

// Engine adapts the bounded baseline to the shared core.Engine
// interface, so the benchmark suite, the portfolio racer and the
// cross-check tests dispatch both engines uniformly. The core.Property
// is narrowed to the fields the baseline interprets, and the flat
// result is widened to core.Result (the whole NDFS reported as the
// reachability phase).
func Engine(opts Options) core.Engine {
	return core.NewEngine(opts.name(), opts.Caps(), func(ctx context.Context, sys *has.System, prop *core.Property) (*core.Result, error) {
		res, err := Verify(ctx, sys, &Property{
			Task:    prop.Task,
			Globals: prop.Globals,
			Conds:   prop.Conds,
			Formula: prop.Formula,
		}, opts)
		if err != nil {
			return nil, err
		}
		return &core.Result{Verdict: res.Verdict, Stats: res.coreStats()}, nil
	})
}

// Register adds the baseline's configurations ("spinlike",
// "spinlike-bitstate") to an engine registry.
func Register(r *core.Registry) {
	for _, opts := range []Options{{}, {Bitstate: true}} {
		opts := opts
		r.MustRegister(core.Registration{
			Name: opts.name(),
			Caps: opts.Caps(),
			New: func(b core.Budget) core.Engine {
				o := opts
				o.Budget = b
				return Engine(o)
			},
		})
	}
}
