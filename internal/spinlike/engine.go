package spinlike

import (
	"context"

	"verifas/internal/core"
	"verifas/internal/has"
)

// Variant is the canonical benchmark label of the bounded baseline,
// matching the naming scheme of core.Options.Variant.
const Variant = "Spin-like"

// Engine adapts the bounded baseline to the shared core.Verifier
// signature, so the benchmark suite and the cross-check tests dispatch
// both engines uniformly. The core.Property is narrowed to the fields the
// baseline interprets, and the flat result is widened to core.Result
// (the whole NDFS reported as the reachability phase).
func Engine(opts Options) core.Verifier {
	return func(ctx context.Context, sys *has.System, prop *core.Property) (*core.Result, error) {
		res, err := Verify(ctx, sys, &Property{
			Task:    prop.Task,
			Globals: prop.Globals,
			Conds:   prop.Conds,
			Formula: prop.Formula,
		}, opts)
		if err != nil {
			return nil, err
		}
		return &core.Result{Verdict: res.Verdict, Stats: res.coreStats()}, nil
	}
}
