package spinlike

import (
	"context"
	"testing"
	"time"

	"verifas/internal/core"
	"verifas/internal/fol"
	"verifas/internal/has"
	"verifas/internal/ltl"
	"verifas/internal/workflows"
)

func verifyOpts(t *testing.T, sys *has.System, prop *Property, opts Options) *Result {
	t.Helper()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if opts.FreshPerSort == 0 {
		opts.FreshPerSort = 2
	}
	if opts.MaxStates == 0 {
		opts.MaxStates = 400000
	}
	if opts.MaxBranch == 0 {
		opts.MaxBranch = 1 << 17
	}
	if opts.Timeout == 0 {
		opts.Timeout = 120 * time.Second
	}
	res, err := Verify(context.Background(), sys, prop, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBitstateDifferential runs the bounded checker in exact and bitstate
// mode over the standard properties: verdicts and state counts must
// agree on these small systems (a hash collision is ~2^-128), and only
// the bitstate run may flag itself lossy.
func TestBitstateDifferential(t *testing.T) {
	props := []*Property{
		{
			Task:    "ProcessOrders",
			Conds:   map[string]fol.Formula{"stocked": fol.MustParse(`instock == "Yes"`)},
			Formula: ltl.MustParse(`G (open(ShipItem) -> stocked)`),
		},
		{
			Task:    "ProcessOrders",
			Formula: ltl.MustParse(`F open(ShipItem)`),
		},
		{
			Task:    "CheckCredit",
			Conds:   map[string]fol.Formula{"decided": fol.MustParse(`c_status != null`)},
			Formula: ltl.MustParse(`G (close(CheckCredit) -> decided)`),
		},
	}
	for _, buggy := range []bool{false, true} {
		sys := workflows.OrderFulfillment(buggy)
		for _, prop := range props {
			exact := verifyOpts(t, sys, prop, Options{})
			bit := verifyOpts(t, sys, prop, Options{Bitstate: true})
			if exact.TimedOut() || bit.TimedOut() {
				t.Skipf("bounded search exceeded budget (%d/%d states)", exact.Stats.States, bit.Stats.States)
			}
			if exact.Holds() != bit.Holds() {
				t.Errorf("buggy=%v %s: bitstate verdict %v, exact %v",
					buggy, prop.Formula, bit.Verdict, exact.Verdict)
			}
			if exact.Stats.States != bit.Stats.States {
				t.Errorf("buggy=%v %s: bitstate states %d, exact %d",
					buggy, prop.Formula, bit.Stats.States, exact.Stats.States)
			}
			if exact.Stats.Lossy {
				t.Error("exact run flagged lossy")
			}
			if !bit.Stats.Lossy {
				t.Error("bitstate run not flagged lossy")
			}
		}
	}
}

// TestBitstateCoverageReporting: the lossy flag survives into the
// core-format stats so downstream consumers can see the coverage caveat.
func TestBitstateCoverageReporting(t *testing.T) {
	res := verifyOpts(t, workflows.OrderFulfillment(false), &Property{
		Task:    "ProcessOrders",
		Conds:   map[string]fol.Formula{"stocked": fol.MustParse(`instock == "Yes"`)},
		Formula: ltl.MustParse(`G (open(ShipItem) -> stocked)`),
	}, Options{Bitstate: true})
	if !res.Stats.Lossy {
		t.Fatal("bitstate stats not flagged lossy")
	}
	if res.Stats.MemBytes <= 0 {
		t.Error("bitstate run reports no MemBytes")
	}
}

// TestBitstateUsesLessMemory: the whole point of the lossy mode — the
// per-state accounting must be smaller than exact mode's, which retains
// full state keys.
func TestBitstateUsesLessMemory(t *testing.T) {
	prop := &Property{
		Task:    "ProcessOrders",
		Formula: ltl.MustParse(`F open(ShipItem)`),
	}
	sys := workflows.OrderFulfillment(false)
	exact := verifyOpts(t, sys, prop, Options{})
	bit := verifyOpts(t, sys, prop, Options{Bitstate: true})
	if exact.TimedOut() || bit.TimedOut() {
		t.Skip("bounded search exceeded budget")
	}
	if bit.Stats.MemBytes >= exact.Stats.MemBytes {
		t.Errorf("bitstate MemBytes %d not below exact %d", bit.Stats.MemBytes, exact.Stats.MemBytes)
	}
}

func TestSpinlikeMemBudget(t *testing.T) {
	sys := workflows.OrderFulfillment(false)
	prop := &Property{
		Task:    "ProcessOrders",
		Formula: ltl.MustParse(`F open(ShipItem)`),
	}
	res := verifyOpts(t, sys, prop, Options{Budget: core.Budget{MaxMemBytes: 4 << 10}})
	if !res.BudgetExhausted() {
		t.Fatalf("verdict = %v, want budget-exhausted under a 4 KiB budget", res.Verdict)
	}
	if res.TimedOut() {
		t.Error("budget verdict must not read as timed-out")
	}
	if res.Stats.States == 0 {
		t.Error("no partial stats on the budget path")
	}
	if res.Stats.MemBytes <= 0 {
		t.Error("no MemBytes in partial stats")
	}

	// The same run with a generous budget completes with the real verdict.
	full := verifyOpts(t, sys, prop, Options{Budget: core.Budget{MaxMemBytes: 1 << 30}})
	if full.BudgetExhausted() {
		t.Error("generous budget tripped")
	}
	if full.Holds() {
		t.Error("shipping is not inevitable")
	}
}

func TestSpinlikeMemBudgetCoreStats(t *testing.T) {
	sys := workflows.OrderFulfillment(false)
	prop := &Property{
		Task:    "ProcessOrders",
		Formula: ltl.MustParse(`F open(ShipItem)`),
	}
	res := verifyOpts(t, sys, prop, Options{Budget: core.Budget{MaxMemBytes: 4 << 10}})
	cs := res.coreStats()
	if !cs.BudgetExhausted {
		t.Error("core-format stats missing BudgetExhausted")
	}
	if cs.Reachability.MemBytes <= 0 {
		t.Error("core-format stats missing MemBytes")
	}
}
