package spinlike

import (
	"context"
	"errors"
	"testing"
	"time"

	"verifas/internal/core"
	"verifas/internal/fol"
	"verifas/internal/ltl"
	"verifas/internal/workflows"
)

// recorder captures the run's event stream.
type recorder struct {
	starts, ends []core.Phase
	progress     []core.ProgressEvent
	verdicts     []core.VerdictEvent
}

func (r *recorder) PhaseStart(p core.Phase) { r.starts = append(r.starts, p) }
func (r *recorder) PhaseEnd(p core.Phase, _ core.PhaseStats) {
	r.ends = append(r.ends, p)
}
func (r *recorder) Progress(e core.ProgressEvent) { r.progress = append(r.progress, e) }
func (r *recorder) Verdict(e core.VerdictEvent)   { r.verdicts = append(r.verdicts, e) }

func TestObserverEvents(t *testing.T) {
	sys := workflows.OrderFulfillment(false)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	res, err := Verify(context.Background(), sys, &Property{
		Task:    "ProcessOrders",
		Conds:   map[string]fol.Formula{"stocked": fol.MustParse(`instock == "Yes"`)},
		Formula: ltl.MustParse(`G (open(ShipItem) -> stocked)`),
	}, Options{Budget: core.Budget{MaxStates: 400000, Timeout: 120 * time.Second, Observer: rec, ProgressStride: 1}, FreshPerSort: 2, MaxBranch: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	wantPhases := []core.Phase{core.PhaseCompile, core.PhaseReach}
	if len(rec.starts) != len(wantPhases) || len(rec.ends) != len(wantPhases) {
		t.Fatalf("phases: starts %v, ends %v, want %v", rec.starts, rec.ends, wantPhases)
	}
	for i, p := range wantPhases {
		if rec.starts[i] != p || rec.ends[i] != p {
			t.Fatalf("phase %d: start %q end %q, want %q", i, rec.starts[i], rec.ends[i], p)
		}
	}
	if len(rec.progress) == 0 {
		t.Fatal("no progress events at stride 1")
	}
	last := -1
	for i, e := range rec.progress {
		if e.Phase != core.PhaseReach {
			t.Fatalf("progress %d from phase %q, want %q", i, e.Phase, core.PhaseReach)
		}
		if e.States < last {
			t.Fatalf("progress %d: states went backwards (%d after %d)", i, e.States, last)
		}
		last = e.States
	}
	if last != res.Stats.States {
		t.Errorf("final progress states = %d, result %d", last, res.Stats.States)
	}
	if len(rec.verdicts) != 1 {
		t.Fatalf("%d verdict events, want 1", len(rec.verdicts))
	}
	v := rec.verdicts[0]
	if v.Verdict != res.Verdict {
		t.Errorf("verdict event %v, result %v", v.Verdict, res.Verdict)
	}
	if v.Stats.Reachability.States != res.Stats.States {
		t.Errorf("verdict stats states = %d, result %d", v.Stats.Reachability.States, res.Stats.States)
	}
}

func TestUnknownTaskSentinel(t *testing.T) {
	sys := workflows.OrderFulfillment(false)
	_, err := Verify(context.Background(), sys, &Property{
		Task:    "NoSuchTask",
		Formula: ltl.MustParse(`G call(Anything)`),
	}, Options{})
	if !errors.Is(err, core.ErrUnknownTask) {
		t.Errorf("unknown task error = %v, want core.ErrUnknownTask", err)
	}
}

func TestEngineAdapter(t *testing.T) {
	sys := workflows.OrderFulfillment(false)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	eng := Engine(Options{Budget: core.Budget{MaxStates: 400000, Timeout: 120 * time.Second}, FreshPerSort: 2, MaxBranch: 1 << 17})
	res, err := eng.Verify(context.Background(), sys, &core.Property{
		Task:    "ProcessOrders",
		Conds:   map[string]fol.Formula{"stocked": fol.MustParse(`instock == "Yes"`)},
		Formula: ltl.MustParse(`G (open(ShipItem) -> stocked)`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut() {
		t.Skipf("bounded search exceeded budget after %d states", res.Stats.Reachability.States)
	}
	if !res.Holds() {
		t.Error("guard property should hold within the bounded domain")
	}
	if res.Stats.StatesExplored() != res.Stats.Reachability.States {
		t.Error("baseline stats must live entirely in the reachability phase")
	}
	if res.Stats.Elapsed == 0 {
		t.Error("elapsed time not propagated")
	}
}
