package spinlike

import (
	"context"
	"testing"
	"time"

	"verifas/internal/core"
	"verifas/internal/fol"
	"verifas/internal/has"
	"verifas/internal/ltl"
	"verifas/internal/workflows"
)

func run(t *testing.T, sys *has.System, prop *Property) *Result {
	t.Helper()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Verify(context.Background(), sys, prop, Options{Budget: core.Budget{MaxStates: 400000, Timeout: 120 * time.Second}, FreshPerSort: 2, MaxBranch: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSafetyHoldsCorrect(t *testing.T) {
	res := run(t, workflows.OrderFulfillment(false), &Property{
		Task:    "ProcessOrders",
		Conds:   map[string]fol.Formula{"stocked": fol.MustParse(`instock == "Yes"`)},
		Formula: ltl.MustParse(`G (open(ShipItem) -> stocked)`),
	})
	if res.TimedOut() {
		t.Skipf("bounded search exceeded budget after %d states", res.Stats.States)
	}
	if !res.Holds() {
		t.Error("guard property should hold within the bounded domain")
	}
}

func TestSafetyViolatedBuggy(t *testing.T) {
	res := run(t, workflows.OrderFulfillment(true), &Property{
		Task:    "ProcessOrders",
		Conds:   map[string]fol.Formula{"stocked": fol.MustParse(`instock == "Yes"`)},
		Formula: ltl.MustParse(`G (open(ShipItem) -> stocked)`),
	})
	if res.TimedOut() {
		t.Skipf("bounded search exceeded budget after %d states", res.Stats.States)
	}
	if res.Holds() {
		t.Error("buggy variant should be caught even with bounded data")
	}
}

func TestLivenessViolated(t *testing.T) {
	res := run(t, workflows.OrderFulfillment(false), &Property{
		Task:    "ProcessOrders",
		Formula: ltl.MustParse(`F open(ShipItem)`),
	})
	if res.TimedOut() {
		t.Skipf("bounded search exceeded budget after %d states", res.Stats.States)
	}
	if res.Holds() {
		t.Error("shipping is not inevitable; nested DFS should find an accepting cycle")
	}
}

func TestChildTaskFiniteViolation(t *testing.T) {
	res := run(t, workflows.OrderFulfillment(false), &Property{
		Task:    "CheckCredit",
		Conds:   map[string]fol.Formula{"undecided": fol.MustParse(`c_status == null`)},
		Formula: ltl.MustParse(`G undecided`),
	})
	if res.TimedOut() {
		t.Skipf("bounded search exceeded budget after %d states", res.Stats.States)
	}
	if res.Holds() {
		t.Error("CheckCredit decides; bounded search must find the finite violation")
	}
}

func TestChildTaskClosingGuardHolds(t *testing.T) {
	res := run(t, workflows.OrderFulfillment(false), &Property{
		Task:    "CheckCredit",
		Conds:   map[string]fol.Formula{"decided": fol.MustParse(`c_status != null`)},
		Formula: ltl.MustParse(`G (close(CheckCredit) -> decided)`),
	})
	if res.TimedOut() {
		t.Skipf("bounded search exceeded budget after %d states", res.Stats.States)
	}
	if !res.Holds() {
		t.Error("closing guard holds in every domain size")
	}
}

func TestTinyBudgetTimesOut(t *testing.T) {
	sys := workflows.OrderFulfillment(false)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Verify(context.Background(), sys, &Property{
		Task:    "ProcessOrders",
		Formula: ltl.MustParse(`F open(ShipItem)`),
	}, Options{Budget: core.Budget{MaxStates: 5}, MaxBranch: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut() {
		t.Error("a 5-state budget must overflow")
	}
}
