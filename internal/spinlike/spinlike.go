// Package spinlike is the baseline verifier standing in for the Spin-based
// artifact verifier of [33] that the paper compares against (Section 4.1).
//
// Spin is a finite-state explicit model checker: the verifier of [33] had
// to bound the data domain (symbolic constants) and could not handle
// updatable artifact relations. This package re-implements that class of
// verifier natively: every artifact variable ranges over a bounded
// abstract domain (the specification/property constants plus k fresh
// values per sort plus null); the read-only database is represented by
// lazily materialized frozen rows over the same domain (each relation has
// k abstract identifiers, each either absent or holding one of the
// possible tuples — chosen nondeterministically at first access and frozen
// thereafter, preserving database immutability); artifact relations are
// ignored, exactly like the restricted model of [33]. The property
// automaton is the same Büchi construction used by VERIFAS, and acceptance
// cycles are found with the nested depth-first search Spin itself uses.
//
// The result is sound and complete FOR THE BOUNDED DOMAIN: a reported
// violation is witnessed by a run over ≤k data values per sort; a
// "holds" verdict may miss violations requiring more values. Its state
// space explodes with data combinatorics — the behaviour Table 2
// demonstrates.
package spinlike

import (
	"context"
	"fmt"
	"sort"
	"time"

	"verifas/internal/fol"
	"verifas/internal/has"
	"verifas/internal/ltl"
)

// Options configure the bounded search.
type Options struct {
	// FreshPerSort is k, the number of abstract values/identifiers per
	// sort beyond the named constants (default 2).
	FreshPerSort int
	// MaxStates bounds the number of distinct product states (default
	// 200000). Exceeding it aborts with TimedOut.
	MaxStates int
	// Timeout bounds wall-clock time (0 = none).
	Timeout time.Duration
	// MaxBranch caps the nondeterministic branching of one transition
	// (assignment × row-materialization choices); exceeding it aborts.
	MaxBranch int
}

// Property mirrors core.Property for the baseline (kept separate to avoid
// an import cycle with the core package's tests).
type Property struct {
	Task    string
	Globals []has.Variable
	Conds   map[string]fol.Formula
	Formula ltl.Formula
}

// Result is the verification outcome.
type Result struct {
	// Holds is true when no violation exists within the bounded domain.
	Holds    bool
	Stats    Stats
	TimedOut bool
}

// Stats reports search effort.
type Stats struct {
	States  int
	Elapsed time.Duration
}

// rowKey identifies an abstract database row.
type rowKey struct {
	Rel string
	ID  fol.Value
}

// rowMap is an immutable frozen-row interpretation; extensions share the
// parent (persistent association list).
type rowMap struct {
	parent *rowMap
	key    rowKey
	// absent marks "this id has no row"; otherwise attrs is the tuple.
	absent bool
	attrs  []fol.Value
}

func (m *rowMap) lookup(k rowKey) (*rowMap, bool) {
	for cur := m; cur != nil; cur = cur.parent {
		if cur.key == k {
			return cur, true
		}
	}
	return nil, false
}

func (m *rowMap) with(k rowKey, absent bool, attrs []fol.Value) *rowMap {
	return &rowMap{parent: m, key: k, absent: absent, attrs: attrs}
}

// entries returns the frozen rows, newest first, deduplicated.
func (m *rowMap) entries() []*rowMap {
	var out []*rowMap
	seen := map[rowKey]bool{}
	for cur := m; cur != nil; cur = cur.parent {
		if cur.key.Rel == "" || seen[cur.key] {
			continue
		}
		seen[cur.key] = true
		out = append(out, cur)
	}
	return out
}

// checker holds the bounded verification context.
type checker struct {
	sys   *has.System
	task  *has.Task
	prop  *Property
	buchi *ltl.Buchi
	opts  Options

	tasks    []*has.Task // all tasks, index = bit position
	taskIdx  map[string]int
	valDom   []fol.Value            // bounded DOMval
	idDom    map[string][]fol.Value // bounded Dom(R.ID) per relation
	svcAtoms map[string]bool

	totalStates int
	budget      int
	ctx         context.Context
	overflow    bool
}

// Verify runs the bounded explicit-state check of the property.
//
// Cancellation contract (mirrors core.Verify): the nested DFS polls ctx
// cooperatively. A cancelled ctx makes Verify return promptly with
// ctx.Err(); an expired deadline (ctx's or opts.Timeout, whichever fires
// first) is reported as Result.TimedOut with a nil error. A nil ctx is
// treated as context.Background().
func Verify(ctx context.Context, sys *has.System, prop *Property, opts Options) (*Result, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err == context.Canceled {
		return nil, err
	}
	if opts.FreshPerSort <= 0 {
		opts.FreshPerSort = 2
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 200000
	}
	if opts.MaxBranch <= 0 {
		opts.MaxBranch = 1 << 16
	}
	task, ok := sys.Task(prop.Task)
	if !ok {
		return nil, fmt.Errorf("spinlike: unknown task %q", prop.Task)
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	c := &checker{
		sys:    sys,
		task:   task,
		prop:   prop,
		buchi:  ltl.TranslateCached(ltl.Not(prop.Formula)),
		opts:   opts,
		idDom:  map[string][]fol.Value{},
		budget: opts.MaxStates,
		ctx:    ctx,
	}
	c.tasks = sys.Tasks()
	c.taskIdx = map[string]int{}
	for i, t := range c.tasks {
		c.taskIdx[t.Name] = i
	}
	if len(c.tasks) > 32 {
		return nil, fmt.Errorf("spinlike: too many tasks")
	}
	// Bounded domains.
	consts := map[string]bool{}
	for _, s := range sys.Constants() {
		consts[s] = true
	}
	for _, f := range prop.Conds {
		for _, s := range fol.Constants(f) {
			consts[s] = true
		}
	}
	var cs []string
	for s := range consts {
		cs = append(cs, s)
	}
	sort.Strings(cs)
	for _, s := range cs {
		c.valDom = append(c.valDom, fol.ConstValue(s))
	}
	for i := 0; i < opts.FreshPerSort; i++ {
		c.valDom = append(c.valDom, fol.ConstValue(fmt.Sprintf("\x00d%d", i)))
	}
	for _, rel := range sys.Schema.Relations {
		for i := 0; i < opts.FreshPerSort; i++ {
			c.idDom[rel.Name] = append(c.idDom[rel.Name], fol.IDValue(rel.Name, i))
		}
	}
	c.svcAtoms = map[string]bool{
		"open:" + task.Name:  true,
		"close:" + task.Name: true,
	}
	for _, s := range task.Services {
		c.svcAtoms["call:"+s.Name] = true
	}
	for _, ch := range task.Children {
		c.svcAtoms["open:"+ch.Name] = true
		c.svcAtoms["close:"+ch.Name] = true
	}

	// ∀ globals: enumerate global valuations; the property holds iff it
	// holds for every one.
	res := &Result{Holds: true}
	gvals := c.globalValuations()
	for _, gv := range gvals {
		violated, timedOut := c.checkForGlobals(gv)
		res.Stats.States = c.totalStates
		if timedOut {
			if err := ctx.Err(); err == context.Canceled {
				return nil, err
			}
			res.TimedOut = true
			res.Holds = false
			res.Stats.Elapsed = time.Since(start)
			return res, nil
		}
		if violated {
			res.Holds = false
			break
		}
	}
	res.Stats.States = c.totalStates
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

func (c *checker) globalValuations() []fol.MapValuation {
	out := []fol.MapValuation{{}}
	for _, g := range c.prop.Globals {
		var cands []fol.Value
		if g.Type.IsID() {
			cands = append(cands, c.idDom[g.Type.Rel]...)
		} else {
			cands = append(cands, c.valDom...)
		}
		cands = append(cands, fol.NullValue())
		var next []fol.MapValuation
		for _, base := range out {
			for _, v := range cands {
				nv := fol.MapValuation{}
				for k, x := range base {
					nv[k] = x
				}
				nv[g.Name] = v
				next = append(next, nv)
			}
		}
		out = next
	}
	return out
}
