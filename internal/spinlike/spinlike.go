// Package spinlike is the baseline verifier standing in for the Spin-based
// artifact verifier of [33] that the paper compares against (Section 4.1).
//
// Spin is a finite-state explicit model checker: the verifier of [33] had
// to bound the data domain (symbolic constants) and could not handle
// updatable artifact relations. This package re-implements that class of
// verifier natively: every artifact variable ranges over a bounded
// abstract domain (the specification/property constants plus k fresh
// values per sort plus null); the read-only database is represented by
// lazily materialized frozen rows over the same domain (each relation has
// k abstract identifiers, each either absent or holding one of the
// possible tuples — chosen nondeterministically at first access and frozen
// thereafter, preserving database immutability); artifact relations are
// ignored, exactly like the restricted model of [33]. The property
// automaton is the same Büchi construction used by VERIFAS, and acceptance
// cycles are found with the nested depth-first search Spin itself uses.
//
// The result is sound and complete FOR THE BOUNDED DOMAIN: a reported
// violation is witnessed by a run over ≤k data values per sort; a
// "holds" verdict may miss violations requiring more values. Its state
// space explodes with data combinatorics — the behaviour Table 2
// demonstrates.
package spinlike

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"verifas/internal/core"
	"verifas/internal/fol"
	"verifas/internal/has"
	"verifas/internal/ltl"
	"verifas/internal/vass"
)

// Options configure the bounded search. The embedded core.Budget
// carries the engine-neutral resource knobs, with spinlike-specific
// defaults and semantics:
//
//   - MaxStates bounds the number of distinct product states (default
//     200000, not core.DefaultMaxStates). Exceeding it aborts with a
//     timed-out verdict.
//   - MaxMemBytes bounds the estimated retained bytes of the search
//     (state table plus records; 0 = unlimited). Exceeding it aborts
//     with core.VerdictBudget and partial stats.
//   - Timeout bounds wall-clock time (0 = none).
//   - Workers bounds the goroutines checking independent global
//     valuations concurrently (<= 1 = sequential). The verdict is
//     identical to the sequential one — results are reduced in
//     valuation order — but Stats.States may include extra states from
//     valuations explored speculatively after the deciding one, and
//     intermediate Progress events are suppressed. Properties without
//     global variables have a single valuation and always run
//     sequentially.
//   - Relaxed (with Workers > 1) switches the valuation fan-out to
//     first-decision-wins: the first valuation to decide settles the
//     verdict and cancels the rest, instead of reducing in valuation
//     order. Under ∀-semantics any deciding valuation is a sound
//     certificate, so verdicts agree with the sequential reduce
//     whenever budgets/timeouts do not intervene; which deciding
//     valuation is reported (and hence Stats) becomes
//     timing-dependent.
//   - Observer, if non-nil, receives the run's event stream (the same
//     core event model as core.Verify: PhaseCompile + PhaseReach with
//     Progress snapshots, terminated by a Verdict event);
//     ProgressStride is the interned-state stride between snapshots.
type Options struct {
	core.Budget
	// FreshPerSort is k, the number of abstract values/identifiers per
	// sort beyond the named constants (default 2).
	FreshPerSort int
	// Bitstate replaces the exact state table (which retains every
	// state's full serialized key) with a double-64-bit-hash table:
	// dramatically less memory per state, at the cost of LOSSY coverage —
	// a hash collision (~2⁻¹²⁸ per pair) silently merges two distinct
	// states, so a "holds" verdict no longer guarantees full bounded-
	// domain coverage and a reported cycle could in principle be
	// fabricated. Off by default; runs that enable it carry
	// Stats.Lossy = true so downstream consumers can tell.
	Bitstate bool
	// MaxBranch caps the nondeterministic branching of one transition
	// (assignment × row-materialization choices); exceeding it aborts.
	MaxBranch int
}

// Property mirrors core.Property for the baseline. It stays a separate
// type (rather than reusing core.Property) so the bounded engine's
// public surface documents exactly which fields it interprets; Engine
// converts between the two.
type Property struct {
	Task    string
	Globals []has.Variable
	Conds   map[string]fol.Formula
	Formula ltl.Formula
}

// Result is the verification outcome.
type Result struct {
	// Verdict classifies the outcome: VerdictHolds means no violation
	// exists within the bounded domain (violations requiring more data
	// values may still exist); VerdictViolated is witnessed by a run
	// over the bounded domain; VerdictTimedOut means the state or time
	// budget ran out first.
	Verdict core.Verdict
	Stats   Stats
}

// Holds reports whether the property held within the bounded domain.
func (r *Result) Holds() bool { return r.Verdict == core.VerdictHolds }

// TimedOut reports whether the search exhausted its budget.
func (r *Result) TimedOut() bool { return r.Verdict == core.VerdictTimedOut }

// BudgetExhausted reports whether the memory budget stopped the search.
func (r *Result) BudgetExhausted() bool { return r.Verdict == core.VerdictBudget }

// Stats reports search effort.
type Stats struct {
	States  int
	Elapsed time.Duration
	// MemBytes is the estimated retained bytes of the state table(s) —
	// the memory-budget accounting, not a heap measurement.
	MemBytes int64
	// Lossy records that the run used bitstate hashing: state coverage
	// is probabilistic (see Options.Bitstate) and a "holds" verdict is
	// weaker than an exact run's.
	Lossy bool
}

// rowKey identifies an abstract database row.
type rowKey struct {
	Rel string
	ID  fol.Value
}

// rowMap is an immutable frozen-row interpretation; extensions share the
// parent (persistent association list).
type rowMap struct {
	parent *rowMap
	key    rowKey
	// absent marks "this id has no row"; otherwise attrs is the tuple.
	absent bool
	attrs  []fol.Value
}

func (m *rowMap) lookup(k rowKey) (*rowMap, bool) {
	for cur := m; cur != nil; cur = cur.parent {
		if cur.key == k {
			return cur, true
		}
	}
	return nil, false
}

func (m *rowMap) with(k rowKey, absent bool, attrs []fol.Value) *rowMap {
	return &rowMap{parent: m, key: k, absent: absent, attrs: attrs}
}

// entries returns the frozen rows, newest first, deduplicated.
func (m *rowMap) entries() []*rowMap {
	var out []*rowMap
	seen := map[rowKey]bool{}
	for cur := m; cur != nil; cur = cur.parent {
		if cur.key.Rel == "" || seen[cur.key] {
			continue
		}
		seen[cur.key] = true
		out = append(out, cur)
	}
	return out
}

// checker holds the bounded verification context.
type checker struct {
	sys   *has.System
	task  *has.Task
	prop  *Property
	buchi *ltl.Buchi
	opts  Options

	tasks    []*has.Task // all tasks, index = bit position
	taskIdx  map[string]int
	valDom   []fol.Value            // bounded DOMval
	idDom    map[string][]fol.Value // bounded Dom(R.ID) per relation
	svcAtoms map[string]bool

	budget   int
	ctx      context.Context
	overflow bool
	// memBudget/memBytes implement MaxMemBytes: estimated retained bytes
	// of the per-valuation state tables. budgetHit records that overflow
	// was forced by the memory budget (not MaxStates/MaxBranch), turning
	// the verdict into core.VerdictBudget.
	memBudget int64
	memBytes  int64
	budgetHit bool
	// bitstate keys the state table by double 64-bit hash instead of the
	// serialized state (Options.Bitstate).
	bitstate bool

	// interned counts distinct product states across all global
	// valuations (monotone); drives the stride-based Progress events.
	interned    int
	obs         core.Observer
	stride      int
	nextEmit    int
	searchStart time.Time
}

// emitProgress publishes a Progress snapshot when the stride has been
// reached (or unconditionally with force, for the final snapshot every
// search emits). Disabled observation costs one nil check.
func (c *checker) emitProgress(frontier int, force bool) {
	if c.obs == nil || (!force && c.interned < c.nextEmit) {
		return
	}
	c.nextEmit = c.interned + c.stride
	c.obs.Progress(core.NewProgressEvent(core.PhaseReach, c.searchStart, vass.Progress{
		Created:  c.interned,
		Frontier: frontier,
	}))
}

// Verify runs the bounded explicit-state check of the property.
//
// Cancellation contract (mirrors core.Verify): the nested DFS polls ctx
// cooperatively. A cancelled ctx makes Verify return promptly with
// ctx.Err(); an expired deadline (ctx's or opts.Timeout, whichever fires
// first) is reported as Result.TimedOut with a nil error. A nil ctx is
// treated as context.Background().
func Verify(ctx context.Context, sys *has.System, prop *Property, opts Options) (*Result, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err == context.Canceled {
		return nil, err
	}
	if opts.FreshPerSort <= 0 {
		opts.FreshPerSort = 2
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 200000
	}
	if opts.MaxBranch <= 0 {
		opts.MaxBranch = 1 << 16
	}
	task, ok := sys.Task(prop.Task)
	if !ok {
		return nil, fmt.Errorf("spinlike: %w %q", core.ErrUnknownTask, prop.Task)
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	obs := opts.Observer
	stride := opts.ProgressStride
	if stride <= 0 {
		stride = core.DefaultProgressStride
	}
	compileStart := time.Now()
	if obs != nil {
		obs.PhaseStart(core.PhaseCompile)
	}
	c := &checker{
		sys:       sys,
		task:      task,
		prop:      prop,
		buchi:     ltl.TranslateCached(ltl.Not(prop.Formula)),
		opts:      opts,
		idDom:     map[string][]fol.Value{},
		budget:    opts.MaxStates,
		memBudget: opts.MaxMemBytes,
		bitstate:  opts.Bitstate,
		ctx:       ctx,
		obs:       obs,
		stride:    stride,
	}
	c.tasks = sys.Tasks()
	c.taskIdx = map[string]int{}
	for i, t := range c.tasks {
		c.taskIdx[t.Name] = i
	}
	if len(c.tasks) > 32 {
		return nil, fmt.Errorf("spinlike: too many tasks")
	}
	// Bounded domains.
	consts := map[string]bool{}
	for _, s := range sys.Constants() {
		consts[s] = true
	}
	for _, f := range prop.Conds {
		for _, s := range fol.Constants(f) {
			consts[s] = true
		}
	}
	var cs []string
	for s := range consts {
		cs = append(cs, s)
	}
	sort.Strings(cs)
	for _, s := range cs {
		c.valDom = append(c.valDom, fol.ConstValue(s))
	}
	for i := 0; i < opts.FreshPerSort; i++ {
		c.valDom = append(c.valDom, fol.ConstValue(fmt.Sprintf("\x00d%d", i)))
	}
	for _, rel := range sys.Schema.Relations {
		for i := 0; i < opts.FreshPerSort; i++ {
			c.idDom[rel.Name] = append(c.idDom[rel.Name], fol.IDValue(rel.Name, i))
		}
	}
	c.svcAtoms = map[string]bool{
		"open:" + task.Name:  true,
		"close:" + task.Name: true,
	}
	for _, s := range task.Services {
		c.svcAtoms["call:"+s.Name] = true
	}
	for _, ch := range task.Children {
		c.svcAtoms["open:"+ch.Name] = true
		c.svcAtoms["close:"+ch.Name] = true
	}
	if obs != nil {
		obs.PhaseEnd(core.PhaseCompile, core.PhaseStats{Elapsed: time.Since(compileStart)})
	}

	// ∀ globals: enumerate global valuations; the property holds iff it
	// holds for every one. The whole nested DFS is one reachability
	// phase in the event stream.
	c.searchStart = time.Now()
	c.nextEmit = stride
	if obs != nil {
		obs.PhaseStart(core.PhaseReach)
	}
	violated, timedOut, budgetHit := c.checkAllGlobals(c.globalValuations())
	c.emitProgress(0, true)
	if obs != nil {
		obs.PhaseEnd(core.PhaseReach, core.PhaseStats{
			States:   c.interned,
			Elapsed:  time.Since(c.searchStart),
			MemBytes: c.memBytes,
		})
	}
	if timedOut {
		if err := ctx.Err(); err == context.Canceled {
			return nil, err
		}
	}
	res := &Result{Verdict: core.VerdictHolds}
	switch {
	case budgetHit:
		res.Verdict = core.VerdictBudget
	case timedOut:
		res.Verdict = core.VerdictTimedOut
	case violated:
		res.Verdict = core.VerdictViolated
	}
	res.Stats.States = c.interned
	res.Stats.MemBytes = c.memBytes
	res.Stats.Lossy = opts.Bitstate
	res.Stats.Elapsed = time.Since(start)
	if obs != nil {
		obs.Verdict(core.VerdictEvent{Verdict: res.Verdict, Stats: res.coreStats()})
	}
	return res, nil
}

// coreStats maps the bounded engine's flat stats onto the shared Stats
// shape (the whole NDFS counts as the reachability phase).
func (r *Result) coreStats() core.Stats {
	return core.Stats{
		Reachability: core.PhaseStats{
			States:   r.Stats.States,
			Elapsed:  r.Stats.Elapsed,
			MemBytes: r.Stats.MemBytes,
		},
		Elapsed:         r.Stats.Elapsed,
		TimedOut:        r.Verdict == core.VerdictTimedOut,
		BudgetExhausted: r.Verdict == core.VerdictBudget,
	}
}

// checkAllGlobals checks the property for every global valuation: the
// property holds iff it holds for all of them. Sequentially it stops at
// the first deciding (violated or timed-out) valuation. With
// opts.Workers > 1 the independent valuations are checked concurrently
// on isolated checker clones (the NDFS only ever mutates the clone's
// overflow/interned counters) and the per-valuation results are reduced
// in valuation order, so the verdict matches the sequential one; a
// valuation is skipped only when an earlier one has already decided,
// which the sequential loop would never have reached either.
func (c *checker) checkAllGlobals(gvs []fol.MapValuation) (bool, bool, bool) {
	workers := c.opts.Workers
	if workers > len(gvs) {
		workers = len(gvs)
	}
	if workers <= 1 {
		for _, gv := range gvs {
			violated, timedOut, budget := c.checkForGlobals(gv)
			if violated || timedOut || budget {
				return violated, timedOut, budget
			}
		}
		return false, false, false
	}
	if c.opts.Relaxed {
		return c.checkAllGlobalsRelaxed(gvs, workers)
	}

	type gvResult struct {
		violated, timedOut, budget bool
		states                     int
		memBytes                   int64
	}
	results := make([]gvResult, len(gvs))
	var next atomic.Int64
	// decided holds the lowest valuation index known to be deciding;
	// len(gvs) means "none yet". Workers skip indexes above it.
	var decided atomic.Int64
	decided.Store(int64(len(gvs)))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(gvs) {
					return
				}
				if int64(i) > decided.Load() {
					continue
				}
				sub := *c
				sub.overflow = false
				sub.interned = 0
				sub.memBytes = 0
				sub.budgetHit = false
				sub.obs = nil // per-run Observers are not concurrency-safe
				violated, timedOut, budget := sub.checkForGlobals(gvs[i])
				results[i] = gvResult{
					violated: violated, timedOut: timedOut, budget: budget,
					states: sub.interned, memBytes: sub.memBytes,
				}
				if violated || timedOut || budget {
					for {
						cur := decided.Load()
						if int64(i) >= cur || decided.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	violated, timedOut, budget := false, false, false
	for _, r := range results {
		c.interned += r.states
		c.memBytes += r.memBytes
		if !violated && !timedOut && !budget {
			violated, timedOut, budget = r.violated, r.timedOut, r.budget
		}
	}
	// The parent's budgetHit drives the verdict mapping in Verify.
	c.budgetHit = budget
	return violated, timedOut, budget
}

// checkAllGlobalsRelaxed races the independent global valuations and
// takes the first deciding result in completion order, cancelling the
// rest (Options.Relaxed) — no ordered reduce, so the fan-out scales
// with the slowest *deciding* valuation instead of every valuation
// before it. Under ∀-semantics any deciding valuation is a sound
// certificate for the verdict it reports; when several valuations
// decide differently (violated vs timed-out), which one is reported is
// timing-dependent.
func (c *checker) checkAllGlobalsRelaxed(gvs []fol.MapValuation, workers int) (bool, bool, bool) {
	baseCtx := c.ctx
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	ctx, cancel := context.WithCancel(baseCtx)
	defer cancel()

	type gvResult struct {
		violated, timedOut, budget bool
		states                     int
		memBytes                   int64
	}
	results := make([]gvResult, len(gvs))
	var next atomic.Int64
	// winner is the index of the first valuation to decide, -1 until
	// then. The CAS makes exactly one decider the winner; its cancel()
	// stops the losers mid-search (their partial results only feed the
	// effort stats).
	var winner atomic.Int64
	winner.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(gvs) || winner.Load() >= 0 {
					return
				}
				sub := *c
				sub.ctx = ctx
				sub.overflow = false
				sub.interned = 0
				sub.memBytes = 0
				sub.budgetHit = false
				sub.obs = nil // per-run Observers are not concurrency-safe
				violated, timedOut, budget := sub.checkForGlobals(gvs[i])
				results[i] = gvResult{
					violated: violated, timedOut: timedOut, budget: budget,
					states: sub.interned, memBytes: sub.memBytes,
				}
				if (violated || timedOut || budget) && winner.CompareAndSwap(-1, int64(i)) {
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, r := range results {
		c.interned += r.states
		c.memBytes += r.memBytes
	}
	violated, timedOut, budget := false, false, false
	if wi := winner.Load(); wi >= 0 {
		r := results[wi]
		violated, timedOut, budget = r.violated, r.timedOut, r.budget
	}
	c.budgetHit = budget
	return violated, timedOut, budget
}

func (c *checker) globalValuations() []fol.MapValuation {
	out := []fol.MapValuation{{}}
	for _, g := range c.prop.Globals {
		var cands []fol.Value
		if g.Type.IsID() {
			cands = append(cands, c.idDom[g.Type.Rel]...)
		} else {
			cands = append(cands, c.valDom...)
		}
		cands = append(cands, fol.NullValue())
		var next []fol.MapValuation
		for _, base := range out {
			for _, v := range cands {
				nv := fol.MapValuation{}
				for k, x := range base {
					nv[k] = x
				}
				nv[g.Name] = v
				next = append(next, nv)
			}
		}
		out = next
	}
	return out
}
