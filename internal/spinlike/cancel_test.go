package spinlike

import (
	"context"
	"errors"
	"testing"
	"time"

	"verifas/internal/ltl"
	"verifas/internal/workflows"
)

func TestVerifyPreCancelled(t *testing.T) {
	sys := workflows.OrderFulfillment(false)
	prop := &Property{Task: "ProcessOrders", Formula: ltl.MustParse(`F close(TakeOrder)`)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Verify(ctx, sys, prop, Options{FreshPerSort: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestVerifyCtxDeadlineReportsTimeout(t *testing.T) {
	sys := workflows.OrderFulfillment(false)
	prop := &Property{Task: "ProcessOrders", Formula: ltl.MustParse(`F close(TakeOrder)`)}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := Verify(ctx, sys, prop, Options{FreshPerSort: 2})
	if err != nil {
		t.Fatalf("an expired deadline is a timeout, not an error: %v", err)
	}
	if !res.TimedOut() {
		t.Error("expired context deadline must report TimedOut")
	}
}
