package spinlike

import (
	"fmt"
	"sort"
	"strings"

	"verifas/internal/fol"
	"verifas/internal/has"
)

// st is one explicit product state: the verified task's variable valuation
// over the bounded domain, the child-activity mask, the frozen-row
// interpretation, and the Büchi node.
type st struct {
	vals   map[string]fol.Value
	mask   uint32
	rows   *rowMap
	node   int32
	closed bool
}

func (c *checker) stateKey(s *st) string {
	var sb strings.Builder
	names := make([]string, 0, len(s.vals))
	for k := range s.vals {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&sb, "%s=%s;", k, s.vals[k])
	}
	fmt.Fprintf(&sb, "|%d|%d|%v|", s.mask, s.node, s.closed)
	rows := s.rows.entries()
	keys := make([]string, 0, len(rows))
	rowStr := map[string]string{}
	for _, r := range rows {
		k := fmt.Sprintf("%s#%s", r.key.Rel, r.key.ID)
		var rs strings.Builder
		if r.absent {
			rs.WriteString("absent")
		} else {
			for _, v := range r.attrs {
				rs.WriteString(v.String())
				rs.WriteByte(',')
			}
		}
		rowStr[k] = rs.String()
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s:%s;", k, rowStr[k])
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Condition satisfaction with lazy row materialization.

// satisfy returns the row-map extensions under which the (possibly
// negated) formula holds for the valuation. An empty result means
// unsatisfiable; c.overflow is set when branching explodes past the cap.
func (c *checker) satisfy(f fol.Formula, neg bool, nu fol.MapValuation, rows *rowMap) []*rowMap {
	if c.overflow {
		return nil
	}
	switch g := f.(type) {
	case fol.True:
		if neg {
			return nil
		}
		return []*rowMap{rows}
	case fol.False:
		if neg {
			return []*rowMap{rows}
		}
		return nil
	case fol.Not:
		return c.satisfy(g.F, !neg, nu, rows)
	case fol.Implies:
		return c.satisfy(fol.MkOr(fol.MkNot(g.L), g.R), neg, nu, rows)
	case fol.And:
		if neg {
			return c.satisfyUnion(negAll(g.Fs), nu, rows)
		}
		return c.satisfySeq(g.Fs, nu, rows)
	case fol.Or:
		if neg {
			return c.satisfySeq(negAll(g.Fs), nu, rows)
		}
		return c.satisfyUnion(g.Fs, nu, rows)
	case fol.Eq:
		l, okL := c.term(g.L, nu)
		r, okR := c.term(g.R, nu)
		if !okL || !okR {
			return nil
		}
		if (l == r) != neg {
			return []*rowMap{rows}
		}
		return nil
	case fol.Exists:
		if neg {
			// Validation rejects negated existentials; treat as overflow
			// defensively.
			c.overflow = true
			return nil
		}
		return c.satisfyExists(g, nu, rows)
	case fol.Rel:
		return c.satisfyRel(g, neg, nu, rows)
	}
	c.overflow = true
	return nil
}

func negAll(fs []fol.Formula) []fol.Formula {
	out := make([]fol.Formula, len(fs))
	for i, f := range fs {
		out[i] = fol.MkNot(f)
	}
	return out
}

// satisfySeq conjoins: each subformula filters/extends the alternatives.
func (c *checker) satisfySeq(fs []fol.Formula, nu fol.MapValuation, rows *rowMap) []*rowMap {
	alts := []*rowMap{rows}
	for _, f := range fs {
		var next []*rowMap
		for _, alt := range alts {
			next = append(next, c.satisfy(f, false, nu, alt)...)
			if len(next) > c.opts.MaxBranch {
				c.overflow = true
				return nil
			}
		}
		alts = next
		if len(alts) == 0 {
			return nil
		}
	}
	return alts
}

func (c *checker) satisfyUnion(fs []fol.Formula, nu fol.MapValuation, rows *rowMap) []*rowMap {
	var out []*rowMap
	for _, f := range fs {
		out = append(out, c.satisfy(f, false, nu, rows)...)
		if len(out) > c.opts.MaxBranch {
			c.overflow = true
			return nil
		}
	}
	return out
}

func (c *checker) satisfyExists(g fol.Exists, nu fol.MapValuation, rows *rowMap) []*rowMap {
	if len(g.Vars) == 0 {
		return c.satisfy(g.Body, false, nu, rows)
	}
	v := g.Vars[0]
	rest := fol.Exists{Vars: g.Vars[1:], Body: g.Body}
	var cands []fol.Value
	if v.Rel != "" {
		cands = append(cands, c.idDom[v.Rel]...)
	} else {
		cands = append(cands, c.valDom...)
	}
	cands = append(cands, fol.NullValue())
	var out []*rowMap
	inner := fol.MapValuation{}
	for k, x := range nu {
		inner[k] = x
	}
	for _, cand := range cands {
		inner[v.Name] = cand
		out = append(out, c.satisfy(rest, false, inner, rows)...)
		if len(out) > c.opts.MaxBranch {
			c.overflow = true
			return nil
		}
	}
	return out
}

func (c *checker) term(t fol.Term, nu fol.MapValuation) (fol.Value, bool) {
	switch t.Kind {
	case fol.TNull:
		return fol.NullValue(), true
	case fol.TConst:
		return fol.ConstValue(t.Name), true
	default:
		v, ok := nu.Lookup(t.Name)
		return v, ok
	}
}

// refConsistent checks that marking (rel,id) absent does not orphan a
// frozen foreign key, and that a tuple's foreign keys do not reference
// known-absent rows.
func (c *checker) absentConsistent(rows *rowMap, k rowKey) bool {
	for _, e := range rows.entries() {
		if e.absent {
			continue
		}
		rel, _ := c.sys.Schema.Relation(e.key.Rel)
		for i, a := range rel.Attrs {
			if a.Kind == has.ForeignKey && a.Ref == k.Rel && e.attrs[i] == k.ID {
				return false
			}
		}
	}
	return true
}

func (c *checker) tupleConsistent(rows *rowMap, rel *has.Relation, attrs []fol.Value) bool {
	for i, a := range rel.Attrs {
		v := attrs[i]
		switch a.Kind {
		case has.NonKey:
			if v.Kind != fol.VConst {
				return false
			}
		case has.ForeignKey:
			if v.Kind != fol.VID || v.Rel != a.Ref {
				return false
			}
			if e, ok := rows.lookup(rowKey{Rel: a.Ref, ID: v}); ok && e.absent {
				return false
			}
		}
	}
	return true
}

func (c *checker) satisfyRel(g fol.Rel, neg bool, nu fol.MapValuation, rows *rowMap) []*rowMap {
	rel, ok := c.sys.Schema.Relation(g.Name)
	if !ok || len(g.Args) != rel.Arity() {
		c.overflow = true
		return nil
	}
	key, okK := c.term(g.Args[0], nu)
	if !okK {
		return nil
	}
	args := make([]fol.Value, len(g.Args)-1)
	anyNull := key.IsNull()
	for i, a := range g.Args[1:] {
		v, ok := c.term(a, nu)
		if !ok {
			return nil
		}
		args[i] = v
		if v.IsNull() {
			anyNull = true
		}
	}
	if anyNull {
		// Atoms with a null argument are false.
		if neg {
			return []*rowMap{rows}
		}
		return nil
	}
	k := rowKey{Rel: g.Name, ID: key}
	entry, known := rows.lookup(k)
	if !neg {
		if known {
			if entry.absent || !tupleEqual(entry.attrs, args) {
				return nil
			}
			return []*rowMap{rows}
		}
		if !c.tupleConsistent(rows, rel, args) {
			return nil
		}
		return []*rowMap{rows.with(k, false, args)}
	}
	// Negated atom.
	if known {
		if entry.absent || !tupleEqual(entry.attrs, args) {
			return []*rowMap{rows}
		}
		return nil
	}
	var out []*rowMap
	if c.absentConsistent(rows, k) {
		out = append(out, rows.with(k, true, nil))
	}
	// Present with a different tuple: enumerate the bounded tuples.
	for _, tuple := range c.tuples(rel) {
		if tupleEqual(tuple, args) {
			continue
		}
		if !c.tupleConsistent(rows, rel, tuple) {
			continue
		}
		out = append(out, rows.with(k, false, tuple))
		if len(out) > c.opts.MaxBranch {
			c.overflow = true
			return nil
		}
	}
	return out
}

func tupleEqual(a, b []fol.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tuples enumerates every bounded tuple of a relation.
func (c *checker) tuples(rel *has.Relation) [][]fol.Value {
	doms := make([][]fol.Value, len(rel.Attrs))
	for i, a := range rel.Attrs {
		if a.Kind == has.NonKey {
			doms[i] = c.valDom
		} else {
			doms[i] = c.idDom[a.Ref]
		}
	}
	out := [][]fol.Value{nil}
	for _, dom := range doms {
		var next [][]fol.Value
		for _, base := range out {
			for _, v := range dom {
				t := make([]fol.Value, len(base)+1)
				copy(t, base)
				t[len(base)] = v
				next = append(next, t)
			}
		}
		out = next
	}
	return out
}

// ---------------------------------------------------------------------------
// Product successors.

type succ struct {
	atom    string
	closing bool
	s       *st
}

// hasSuccs enumerates the HAS*-level successors (before the Büchi
// product) of the task-local state.
func (c *checker) hasSuccs(s *st, gv fol.MapValuation) []succ {
	var out []succ
	nu := c.valuation(s, gv)
	if s.mask == 0 {
		for _, svc := range c.task.Services {
			out = append(out, c.internalSuccs(s, svc, nu, gv)...)
			if c.overflow {
				return nil
			}
		}
		if c.task.Parent() != nil {
			cp := c.task.ClosingPre
			if cp == nil {
				cp = fol.True{}
			}
			for _, rows := range c.satisfy(cp, false, nu, s.rows) {
				ns := &st{vals: s.vals, mask: s.mask, rows: rows, closed: true}
				out = append(out, succ{atom: "close:" + c.task.Name, closing: true, s: ns})
			}
		}
	}
	for i, ch := range c.task.Children {
		bit := uint32(1) << uint(i)
		if s.mask&bit == 0 {
			op := ch.OpeningPre
			if op == nil {
				op = fol.True{}
			}
			for _, rows := range c.satisfy(op, false, nu, s.rows) {
				ns := &st{vals: s.vals, mask: s.mask | bit, rows: rows}
				out = append(out, succ{atom: "open:" + ch.Name, s: ns})
			}
		} else {
			// Child closes: havoc the returned parent variables over the
			// bounded domain.
			returned := ch.ReturnedParentVars()
			for _, vals := range c.havoc(s.vals, returned) {
				ns := &st{vals: vals, mask: s.mask &^ bit, rows: s.rows}
				out = append(out, succ{atom: "close:" + ch.Name, s: ns})
			}
		}
		if len(out) > c.opts.MaxBranch {
			c.overflow = true
			return nil
		}
	}
	return out
}

func (c *checker) internalSuccs(s *st, svc *has.Service, nu fol.MapValuation, gv fol.MapValuation) []succ {
	pre := svc.Pre
	if pre == nil {
		pre = fol.True{}
	}
	post := svc.Post
	if post == nil {
		post = fol.True{}
	}
	var out []succ
	fixed := map[string]bool{}
	for _, y := range svc.Propagate {
		fixed[y] = true
	}
	for _, in := range c.task.In {
		fixed[in] = true
	}
	var free []string
	for _, v := range c.task.Vars {
		if !fixed[v.Name] {
			free = append(free, v.Name)
		}
	}
	for _, rows := range c.satisfy(pre, false, nu, s.rows) {
		for _, vals := range c.havoc(s.vals, free) {
			nnu := c.valuationVals(vals, gv)
			for _, rows2 := range c.satisfy(post, false, nnu, rows) {
				ns := &st{vals: vals, mask: s.mask, rows: rows2}
				out = append(out, succ{atom: "call:" + svc.Name, s: ns})
				if len(out) > c.opts.MaxBranch {
					c.overflow = true
					return nil
				}
			}
			if c.overflow {
				return nil
			}
		}
	}
	return out
}

// havoc enumerates all bounded reassignments of the named variables.
func (c *checker) havoc(vals map[string]fol.Value, names []string) []map[string]fol.Value {
	out := []map[string]fol.Value{vals}
	for _, name := range names {
		v, _ := c.task.Var(name)
		var cands []fol.Value
		if v.Type.IsID() {
			cands = append(cands, c.idDom[v.Type.Rel]...)
		} else {
			cands = append(cands, c.valDom...)
		}
		cands = append(cands, fol.NullValue())
		var next []map[string]fol.Value
		for _, base := range out {
			for _, cand := range cands {
				nv := make(map[string]fol.Value, len(base))
				for k, x := range base {
					nv[k] = x
				}
				nv[name] = cand
				next = append(next, nv)
			}
			if len(next) > c.opts.MaxBranch {
				c.overflow = true
				return nil
			}
		}
		out = next
	}
	return out
}

func (c *checker) valuation(s *st, gv fol.MapValuation) fol.MapValuation {
	return c.valuationVals(s.vals, gv)
}

func (c *checker) valuationVals(vals map[string]fol.Value, gv fol.MapValuation) fol.MapValuation {
	nu := fol.MapValuation{}
	for k, v := range vals {
		nu[k] = v
	}
	for k, v := range gv {
		nu[k] = v
	}
	return nu
}

// productSuccs composes HAS* successors with the Büchi transition.
func (c *checker) productSuccs(s *st, gv fol.MapValuation) []*st {
	if s.closed {
		return nil
	}
	var out []*st
	for _, hs := range c.hasSuccs(s, gv) {
		for _, n := range c.buchi.States[s.node].Succs {
			ns, ok := c.buchiEnter(hs.s, int32(n), hs.atom, gv)
			if !ok {
				continue
			}
			for _, x := range ns {
				x.closed = hs.closing
			}
			out = append(out, ns...)
			if len(out) > c.opts.MaxBranch {
				c.overflow = true
				return nil
			}
		}
	}
	return out
}

// buchiEnter checks the literal requirements of Büchi node n against the
// snapshot, possibly materializing rows for the condition propositions.
type stList = []*st

func (c *checker) buchiEnter(base *st, n int32, atom string, gv fol.MapValuation) (stList, bool) {
	bs := &c.buchi.States[n]
	nu := c.valuation(base, gv)
	alts := []*rowMap{base.rows}
	for _, a := range bs.Pos {
		if c.svcAtoms[a] {
			if a != atom {
				return nil, false
			}
			continue
		}
		f := c.prop.Conds[a]
		var next []*rowMap
		for _, alt := range alts {
			next = append(next, c.satisfy(f, false, nu, alt)...)
		}
		alts = next
		if len(alts) == 0 {
			return nil, false
		}
	}
	for _, a := range bs.Neg {
		if c.svcAtoms[a] {
			if a == atom {
				return nil, false
			}
			continue
		}
		f := c.prop.Conds[a]
		var next []*rowMap
		for _, alt := range alts {
			next = append(next, c.satisfy(f, true, nu, alt)...)
		}
		alts = next
		if len(alts) == 0 {
			return nil, false
		}
	}
	var out stList
	for _, alt := range alts {
		out = append(out, &st{vals: base.vals, mask: base.mask, rows: alt, node: n})
	}
	return out, true
}

// initialStates builds the initial product states for a global valuation.
func (c *checker) initialStates(gv fol.MapValuation) []*st {
	vals := map[string]fol.Value{}
	for _, v := range c.task.Vars {
		vals[v.Name] = fol.NullValue()
	}
	var bases []*st
	if c.task.Parent() == nil {
		pre := c.sys.GlobalPre
		if pre == nil {
			pre = fol.True{}
		}
		for _, assignment := range c.havoc(vals, varNames(c.task.Vars)) {
			nu := c.valuationVals(assignment, gv)
			for _, rows := range c.satisfy(pre, false, nu, nil) {
				bases = append(bases, &st{vals: assignment, rows: rows})
			}
			if c.overflow {
				return nil
			}
		}
	} else {
		for _, assignment := range c.havoc(vals, c.task.In) {
			bases = append(bases, &st{vals: assignment, rows: nil})
		}
	}
	openAtom := "open:" + c.task.Name
	var out []*st
	for _, b := range bases {
		for _, n := range c.buchi.Initial {
			ns, ok := c.buchiEnter(b, int32(n), openAtom, gv)
			if ok {
				out = append(out, ns...)
			}
		}
	}
	return out
}

func varNames(vs []has.Variable) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out
}

// ---------------------------------------------------------------------------
// Nested depth-first search (the algorithm Spin uses for acceptance
// cycles), plus finite-run acceptance.

// checkForGlobals explores the product for one global valuation.
// It returns (violated, timedOut, budget); budget marks memory-budget
// exhaustion (core.VerdictBudget) as opposed to the state/branch/time
// budgets that map to timedOut.
func (c *checker) checkForGlobals(gv fol.MapValuation) (bool, bool, bool) {
	type nodeRec struct {
		s     *st
		succs []int // state ids
	}
	var recs []nodeRec
	// Exact mode keys the table by the serialized state (retaining one
	// key string per state — the dominant memory cost of the search);
	// bitstate mode keys it by a double 64-bit hash of that string, so
	// the string is transient. A collision of both hashes (~2⁻¹²⁸ per
	// pair) silently merges two distinct states: lossy coverage, which is
	// why Options.Bitstate is opt-in and flagged in Stats.Lossy.
	var idOf map[string]int
	var bitOf map[[2]uint64]int
	if c.bitstate {
		bitOf = map[[2]uint64]int{}
	} else {
		idOf = map[string]int{}
	}

	intern := func(s *st) (int, bool) {
		k := c.stateKey(s)
		var hk [2]uint64
		if c.bitstate {
			hk = doubleHash(k)
			if id, ok := bitOf[hk]; ok {
				return id, false
			}
		} else if id, ok := idOf[k]; ok {
			return id, false
		}
		id := len(recs)
		if id >= c.budget {
			c.overflow = true
			return 0, false
		}
		// Memory accounting: map entry + nodeRec + state skeleton; the
		// exact table additionally retains the key string.
		cost := int64(80)
		if !c.bitstate {
			cost += int64(len(k)) + 32
		}
		if c.memBudget > 0 && c.memBytes+cost > c.memBudget {
			c.budgetHit = true
			c.overflow = true
			return 0, false
		}
		c.memBytes += cost
		if c.bitstate {
			bitOf[hk] = id
		} else {
			idOf[k] = id
		}
		recs = append(recs, nodeRec{s: s})
		c.interned++
		return id, true
	}
	expand := func(id int) []int {
		if recs[id].succs != nil || recs[id].s.closed {
			return recs[id].succs
		}
		var out []int
		for _, ns := range c.productSuccs(recs[id].s, gv) {
			if c.overflow {
				return nil
			}
			sid, _ := intern(ns)
			if c.overflow {
				return nil
			}
			out = append(out, sid)
		}
		if out == nil {
			out = []int{}
		}
		recs[id].succs = out
		return out
	}

	checkTime := func() bool {
		return c.ctx != nil && c.ctx.Err() != nil
	}

	// Outer DFS with post-order accepting-state probing (NDFS).
	inner := func(start int) bool {
		// Search for a cycle back to start.
		seen := map[int]bool{}
		stack := append([]int{}, expand(start)...)
		for len(stack) > 0 {
			if c.overflow || checkTime() {
				return false
			}
			c.emitProgress(len(stack), false)
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if id == start {
				return true
			}
			if seen[id] {
				continue
			}
			seen[id] = true
			stack = append(stack, expand(id)...)
		}
		return false
	}

	// stopped maps an overflow/timeout abort to the (timedOut, budget)
	// pair: the memory budget wins over the state/time budgets because
	// budgetHit is only ever set together with overflow.
	stopped := func() (bool, bool, bool) {
		return false, !c.budgetHit, c.budgetHit
	}

	var roots []int
	for _, s := range c.initialStates(gv) {
		if c.overflow {
			return stopped()
		}
		id, _ := intern(s)
		if c.overflow {
			return stopped()
		}
		roots = append(roots, id)
	}
	visited := map[int]bool{}
	type frame struct {
		id int
		ei int
	}
	for _, root := range roots {
		if visited[root] {
			continue
		}
		stack := []frame{{id: root}}
		visited[root] = true
		for len(stack) > 0 {
			if c.overflow || checkTime() {
				return stopped()
			}
			c.emitProgress(len(stack), false)
			f := &stack[len(stack)-1]
			s := recs[f.id].s
			// Finite-run acceptance.
			if s.closed && c.buchi.States[s.node].FinAccepting {
				return true, false, false
			}
			succs := expand(f.id)
			if c.overflow {
				return stopped()
			}
			if f.ei < len(succs) {
				nid := succs[f.ei]
				f.ei++
				if !visited[nid] {
					visited[nid] = true
					stack = append(stack, frame{id: nid})
				}
				continue
			}
			// Post-order: probe accepting states for self-cycles.
			if !s.closed && c.buchi.States[s.node].Accepting {
				if inner(f.id) {
					return true, false, false
				}
				if c.overflow || checkTime() {
					return stopped()
				}
			}
			stack = stack[:len(stack)-1]
		}
	}
	return false, false, false
}

// doubleHash computes two independent 64-bit hashes of the serialized
// state for the bitstate table: FNV-1a plus a SplitMix64-style
// accumulator. Treating the pair as one 128-bit fingerprint puts the
// per-pair collision probability around 2⁻¹²⁸.
func doubleHash(s string) [2]uint64 {
	h1 := uint64(14695981039346656037)
	h2 := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < len(s); i++ {
		b := uint64(s[i])
		h1 = (h1 ^ b) * 1099511628211
		h2 = (h2 + b) * 0xBF58476D1CE4E5B9
		h2 ^= h2 >> 29
	}
	return [2]uint64{h1, h2}
}
