// Quickstart: build a small HAS* specification in code, verify two
// LTL-FO properties, and print the verdicts.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"verifas/internal/core"
	"verifas/internal/fol"
	"verifas/internal/has"
	"verifas/internal/ltl"
)

func main() {
	// A two-stage document approval process: the root task drafts
	// documents and a Review child task approves or rejects them based on
	// the author's clearance in the read-only database.
	schema := has.NewSchema(
		has.RelDef("CLEARANCES", has.NK("level")),
		has.RelDef("AUTHORS", has.NK("name"), has.FK("clearance", "CLEARANCES")),
	)
	review := &has.Task{
		Name: "Review",
		Vars: []has.Variable{
			has.IDV("r_author", "AUTHORS"),
			has.IDV("r_clearance", "CLEARANCES"),
			has.V("r_verdict"),
		},
		In:         []string{"r_author"},
		Out:        []string{"r_verdict"},
		InMap:      map[string]string{"r_author": "author"},
		OutMap:     map[string]string{"r_verdict": "state"},
		OpeningPre: fol.MustParse(`state == "Drafted"`),
		ClosingPre: fol.MustParse(`r_verdict == "Approved" || r_verdict == "Rejected"`),
		Services: []*has.Service{{
			Name: "Decide",
			Pre:  fol.MustParse(`true`),
			Post: fol.MustParse(`exists n : val (
				AUTHORS(r_author, n, r_clearance)
				&& (CLEARANCES(r_clearance, "Secret") -> r_verdict == "Approved")
				&& (!CLEARANCES(r_clearance, "Secret") -> r_verdict == "Rejected"))`),
			Propagate: []string{"r_author"},
		}},
	}
	root := &has.Task{
		Name: "Desk",
		Vars: []has.Variable{
			has.IDV("author", "AUTHORS"),
			has.V("state"),
		},
		Services: []*has.Service{
			{
				Name: "Draft",
				Pre:  fol.MustParse(`state == null`),
				Post: fol.MustParse(`author != null && state == "Drafted"`),
			},
			{
				Name: "Archive",
				Pre:  fol.MustParse(`state == "Approved" || state == "Rejected"`),
				Post: fol.MustParse(`author == null && state == null`),
			},
		},
		Children: []*has.Task{review},
	}
	sys := &has.System{
		Name:      "DocApproval",
		Schema:    schema,
		Root:      root,
		GlobalPre: fol.MustParse(`author == null && state == null`),
	}
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}

	verify := func(prop *core.Property) {
		res, err := core.Verify(context.Background(), sys, prop, core.Options{Budget: core.Budget{Timeout: 30 * time.Second}})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "HOLDS"
		if !res.Holds() {
			verdict = "VIOLATED"
		}
		fmt.Printf("%-34s %-9s (%v, %d states)\n",
			prop.Name, verdict, res.Stats.Elapsed.Round(time.Millisecond), res.Stats.StatesExplored())
		if res.Violation != nil {
			for i, step := range res.Violation.Prefix {
				fmt.Printf("   %2d. %-18s %s\n", i, step.Service.AtomName(), step.State)
			}
		}
	}

	// Safety: every decision made by Review respects the clearance table
	// — if the review closes Approved, the author's clearance is Secret.
	verify(&core.Property{
		Name: "approval-needs-clearance",
		Task: "Review",
		Conds: map[string]fol.Formula{
			"approved": fol.MustParse(`r_verdict == "Approved"`),
			"secret":   fol.MustParse(`r_clearance != null && CLEARANCES(r_clearance, "Secret")`),
		},
		Formula: ltl.MustParse(`G ((close(Review) && approved) -> secret)`),
	})

	// Liveness that fails: nothing forces the desk to ever archive.
	verify(&core.Property{
		Name:    "archiving-inevitable",
		Task:    "Desk",
		Formula: ltl.MustParse(`F call(Archive)`),
	})
}
