// Synthetic workflows: generate a random HAS* specification with the
// Appendix D generator, print it in the textual format, measure its
// cyclomatic complexity, and verify the twelve Table 4 template
// properties against it.
//
//	go run ./examples/synthetic [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"verifas/internal/benchmark"
	"verifas/internal/core"
	"verifas/internal/cyclo"
	"verifas/internal/spec"
	"verifas/internal/synth"
)

func main() {
	seed := flag.Int64("seed", 11, "generator seed")
	full := flag.Bool("print-spec", false, "print the full specification text")
	flag.Parse()

	params := synth.Params{
		Relations:       3,
		Tasks:           3,
		VarsPerTask:     8,
		ServicesPerTask: 6,
		AtomsPerCond:    3,
		NonKeyAttrs:     2,
		Constants:       4,
	}
	sys := synth.GenerateValid(params, *seed, 3, 30)
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	m, mTask, mVar := cyclo.Complexity(sys)
	fmt.Printf("generated %s: %d relations, %d tasks, %d variables, %d services, M(A)=%d (%s.%s)\n",
		sys.Name, st.Relations, st.Tasks, st.Variables, st.Services, m, mTask, mVar)
	if *full {
		fmt.Println(spec.Print(&spec.File{System: sys}))
	}

	props := benchmark.Properties(sys, *seed)
	tmpls := benchmark.Templates()
	fmt.Println("\nverifying the 12 Table 4 template properties of the root task:")
	for i, prop := range props {
		res, err := core.Verify(context.Background(), sys, prop, core.Options{
			Budget: core.Budget{
				Timeout:   20 * time.Second,
				MaxStates: 300_000,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "HOLDS"
		switch {
		case res.Stats.TimedOut:
			verdict = "TIMEOUT"
		case !res.Holds():
			verdict = "VIOLATED"
		}
		fmt.Printf("  %-34s %-9s %-9s (%v, %d states)\n",
			tmpls[i].Name, tmpls[i].Class, verdict,
			res.Stats.Elapsed.Round(time.Millisecond), res.Stats.StatesExplored())
	}
}
