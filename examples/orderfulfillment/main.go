// The paper's running example (Appendix B): the Order Fulfillment
// workflow, verified against property (†) of Section 2.1 —
//
//	"If an order is taken and the ordered item is out of stock, then the
//	 item must be restocked before it is shipped."
//
// The correct specification guards ShipItem's opening with the stock
// test; the buggy variant moves the test inside the shipping service, and
// the verifier produces a counterexample, exactly as the paper describes.
//
//	go run ./examples/orderfulfillment
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"verifas/internal/core"
	"verifas/internal/fol"
	"verifas/internal/has"
	"verifas/internal/ltl"
	"verifas/internal/workflows"
)

func main() {
	// The stock guard of ShipItem's opening service, as a task-level
	// safety property.
	guard := &core.Property{
		Name: "ship-only-in-stock",
		Task: "ProcessOrders",
		Conds: map[string]fol.Formula{
			"stocked": fol.MustParse(`instock == "Yes"`),
		},
		Formula: ltl.MustParse(`G (open(ShipItem) -> stocked)`),
	}
	// Property (†) with the global item variable i.
	dagger := &core.Property{
		Name:    "restock-before-ship",
		Task:    "ProcessOrders",
		Globals: []has.Variable{has.IDV("i", "ITEMS")},
		Conds: map[string]fol.Formula{
			"p": fol.MustParse(`item_id == i && instock == "No"`),
			"q": fol.MustParse(`item_id == i`),
			"r": fol.MustParse(`item_id == i`),
		},
		Formula: ltl.MustParse(
			`G ((close(TakeOrder) && p) -> (!(open(ShipItem) && q) U (open(Restock) && r)))`),
	}

	for _, variant := range []struct {
		label string
		buggy bool
	}{
		{"correct specification (stock test guards ShipItem's opening)", false},
		{"buggy specification (stock test moved inside ShipItem)", true},
	} {
		sys := workflows.OrderFulfillment(variant.buggy)
		if err := sys.Validate(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", variant.label)
		for _, prop := range []*core.Property{guard, dagger} {
			res, err := core.Verify(context.Background(), sys, prop, core.Options{Budget: core.Budget{Timeout: 60 * time.Second}})
			if err != nil {
				log.Fatal(err)
			}
			verdict := "HOLDS"
			if !res.Holds() {
				verdict = "VIOLATED"
			}
			fmt.Printf("  %-24s %-9s (%v, %d states, Büchi %d)\n",
				prop.Name, verdict, res.Stats.Elapsed.Round(time.Millisecond),
				res.Stats.StatesExplored(), res.Stats.BuchiStates)
			if res.Violation != nil && prop == guard {
				fmt.Println("  counterexample (symbolic local run of ProcessOrders):")
				for i, step := range res.Violation.Prefix {
					fmt.Printf("    %2d. %-22s %s\n", i, step.Service.AtomName(), step.State)
				}
			}
		}
		fmt.Println()
	}
	fmt.Println("Note: the verifier abstracts child-task returns (any consistent")
	fmt.Println("result), so property (†) admits counterexamples even in the correct")
	fmt.Println("variant — an order can be re-taken after going back into the pool,")
	fmt.Println("restoring stock without a Restock call. The per-snapshot guard")
	fmt.Println("property distinguishes the two variants, as in the paper.")
}
