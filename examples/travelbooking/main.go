// Travel booking: verify several properties of the TravelBooking workflow
// and then execute a concrete random run of the same specification,
// showing both halves of the system — the symbolic verifier and the
// explicit runtime.
//
//	go run ./examples/travelbooking
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"verifas/internal/concrete"
	"verifas/internal/core"
	"verifas/internal/fol"
	"verifas/internal/ltl"
	"verifas/internal/workflows"
)

func main() {
	sys := workflows.TravelBooking()
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}

	props := []*core.Property{
		{
			// Payment is only attempted once both bookings are held.
			Name: "pay-after-both-held",
			Task: "TripDesk",
			Conds: map[string]fol.Formula{
				"held": fol.MustParse(`flight_state == "Held" && hotel_state == "Held"`),
			},
			Formula: ltl.MustParse(`G (open(ConfirmPayment) -> held)`),
		},
		{
			// Ticketing is not guaranteed (the trip can be abandoned).
			Name:    "ticketing-inevitable",
			Task:    "TripDesk",
			Formula: ltl.MustParse(`F call(FinishTrip)`),
		},
		{
			// A held flight is never re-booked before payment concludes:
			// BookFlight's opening requires flight == null.
			Name: "no-double-flight-booking",
			Task: "TripDesk",
			Conds: map[string]fol.Formula{
				"noflight": fol.MustParse(`flight == null`),
			},
			Formula: ltl.MustParse(`G (open(BookFlight) -> noflight)`),
		},
	}
	for _, prop := range props {
		res, err := core.Verify(context.Background(), sys, prop, core.Options{Budget: core.Budget{Timeout: 60 * time.Second}})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "HOLDS"
		if !res.Holds() {
			verdict = "VIOLATED"
		}
		fmt.Printf("%-28s %-9s (%v, %d states)\n",
			prop.Name, verdict, res.Stats.Elapsed.Round(time.Millisecond), res.Stats.StatesExplored())
	}

	// Concrete execution over a random database.
	fmt.Println("\nconcrete run over a random database:")
	r := rand.New(rand.NewSource(4))
	db := concrete.RandomDB(sys.Schema, r, 3, sys.Constants())
	run, err := concrete.NewRunner(sys, db, r)
	if err != nil {
		log.Fatal(err)
	}
	if err := run.Run(30); err != nil {
		log.Fatal(err)
	}
	for i, step := range run.Trace {
		it, _ := step.Vals.Lookup("itinerary")
		fs, _ := step.Vals.Lookup("flight_state")
		hs, _ := step.Vals.Lookup("hotel_state")
		fmt.Printf("  %2d. %-24s itinerary=%-10s flight=%-8s hotel=%-8s\n",
			i, step.Event.AtomName(), it, fs, hs)
	}
}
