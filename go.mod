module verifas

go 1.22
